(* Unit and property tests for Ff_util: PRNG, statistics, heap, series. *)

module Prng = Ff_util.Prng
module Stats = Ff_util.Stats
module Heap = Ff_util.Heap
module Series = Ff_util.Series

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-3))

(* ---------------- PRNG ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_dependence () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Prng.int64 a = Prng.int64 b)

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 3.5)
  done

let test_prng_uniformity () =
  let rng = Prng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Prng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      Alcotest.(check bool) "within 15% of uniform" true
        (abs (c - expected) < expected * 15 / 100))
    buckets

let test_prng_int_unbiased_small_bound () =
  (* regression: [int] used plain modulo, which biases small residues when
     the bound does not divide 2^63. With rejection sampling a chi-square
     test over bound 3 must stay under the p=0.001 critical value. *)
  let rng = Prng.create ~seed:17 in
  let n = 30_000 in
  let buckets = Array.make 3 0 in
  for _ = 1 to n do
    let i = Prng.int rng 3 in
    buckets.(i) <- buckets.(i) + 1
  done;
  let expected = float_of_int n /. 3. in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. buckets
  in
  (* 2 degrees of freedom: critical value 13.82 at p=0.001 *)
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f < 13.82" chi2)
    true (chi2 < 13.82)

let test_prng_pow2_stream_unchanged () =
  (* power-of-two bounds take the masking fast path; it must agree with
     the uniform draw (and historically, with the old modulo stream) *)
  let a = Prng.create ~seed:23 and b = Prng.create ~seed:23 in
  for _ = 1 to 200 do
    let expected = Int64.to_int (Int64.rem (Int64.shift_right_logical (Prng.int64 a) 1) 16L) in
    Alcotest.(check int) "mask = rem for pow2" expected (Prng.int b 16)
  done

let test_prng_split_independent () =
  let parent = Prng.create ~seed:3 in
  let child = Prng.split parent in
  let c1 = Prng.int64 child and p1 = Prng.int64 parent in
  Alcotest.(check bool) "split diverges from parent" true (c1 <> p1)

let test_prng_exponential_mean () =
  let rng = Prng.create ~seed:11 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "sample mean near 2.0" true (Float.abs (mean -. 2.0) < 0.1)

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:13 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

(* ---------------- Stats ---------------- *)

let test_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "empty mean" 0. (Stats.mean [])

let test_variance () =
  check_float "variance" 1.25 (Stats.variance [ 1.; 2.; 3.; 4. ]);
  check_float "singleton" 0. (Stats.variance [ 5. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Stats.percentile 0. xs);
  check_float "p50" 3. (Stats.percentile 50. xs);
  check_float "p100" 5. (Stats.percentile 100. xs);
  check_float "p25 interpolates" 2. (Stats.percentile 25. xs)

let test_percentile_empty () =
  Alcotest.check_raises "empty percentile" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile 50. []))

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  check_float "initial" 0. (Stats.Ewma.value e);
  Stats.Ewma.update e 10.;
  check_float "first sample taken whole" 10. (Stats.Ewma.value e);
  Stats.Ewma.update e 0.;
  check_float "decays" 5. (Stats.Ewma.value e);
  Stats.Ewma.reset e;
  check_float "reset" 0. (Stats.Ewma.value e)

let test_window_counter () =
  let w = Stats.Window_counter.create ~width:1.0 in
  Stats.Window_counter.add w ~now:0.1 100.;
  Stats.Window_counter.add w ~now:0.5 100.;
  check_float_loose "rate inside window" 200. (Stats.Window_counter.rate w ~now:0.9);
  (* after the window passes, old samples age out *)
  check_float_loose "rate after window" 0. (Stats.Window_counter.rate w ~now:5.0)

let test_window_counter_long_gap () =
  let w = Stats.Window_counter.create ~width:1.0 in
  Stats.Window_counter.add w ~now:0.2 100.;
  (* a gap many windows long: advance must zero every bucket, not just
     (gap mod window) of them, or the stale 100. would leak back in *)
  check_float_loose "rate after long gap" 0. (Stats.Window_counter.rate w ~now:57.3);
  Stats.Window_counter.add w ~now:57.4 300.;
  check_float_loose "counts again after gap" 300. (Stats.Window_counter.rate w ~now:57.6);
  (* a second long gap where [add] itself (not [rate]) does the advancing *)
  Stats.Window_counter.add w ~now:123.0 500.;
  check_float_loose "only the fresh sample survives" 500.
    (Stats.Window_counter.rate w ~now:123.1)

(* ---------------- Heap ---------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p p) [ 5.; 1.; 4.; 2.; 3. ];
  let order = List.init 5 (fun _ -> fst (Option.get (Heap.pop h))) in
  Alcotest.(check (list (float 0.))) "sorted pops" [ 1.; 2.; 3.; 4.; 5. ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~prio:1. "first";
  Heap.push h ~prio:1. "second";
  Heap.push h ~prio:1. "third";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ] order

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Heap.push h ~prio:1. 1;
  Alcotest.(check int) "size" 1 (Heap.size h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* Regression: popping used to leave the element reachable from the
   vacated slot [vals.(len)] until something overwrote it — a space leak
   pinning packets and closures on any heap that drains. A weak pointer
   sees whether the popped value stays alive across a major GC. *)
let test_heap_pop_releases () =
  let h = Heap.create () in
  let weak = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref (1000 + i) in
    (* boxed, unshared *)
    Weak.set weak i (Some v);
    Heap.push h ~prio:(float_of_int i) v
  done;
  for _ = 0 to 3 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "popped value %d collected" i)
      false
      (Weak.check weak i)
  done;
  for i = 4 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "pending value %d alive" i)
      true
      (Weak.check weak i)
  done;
  Heap.clear h;
  Gc.full_major ();
  for i = 4 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "cleared value %d collected" i)
      false
      (Weak.check weak i)
  done

(* The float instantiation crosses the [Obj.magic 0] slot filler with
   potential flat-float-array specialization; exercising growth, drain
   and refill proves the value arrays stay generic. *)
let test_heap_float_values () =
  let h : float Heap.t = Heap.create () in
  for i = 99 downto 0 do
    Heap.push h ~prio:(float_of_int i) (float_of_int i *. 2.)
  done;
  for i = 0 to 49 do
    Alcotest.(check (float 0.)) "float value" (float_of_int i *. 2.) (Heap.pop_min h)
  done;
  Heap.push h ~prio:(-1.) (-2.);
  Alcotest.(check (float 0.)) "refilled min" (-2.) (Heap.pop_min h)

(* ---------------- Int_table ---------------- *)

module It = Ff_util.Int_table

let test_int_table_basics () =
  let t = It.create () in
  Alcotest.(check int) "empty" 0 (It.length t);
  It.set t 5 42;
  It.set t 7 1;
  It.set t 5 43;
  Alcotest.(check int) "length counts keys once" 2 (It.length t);
  Alcotest.(check int) "overwrite" 43 (It.get t 5 ~default:(-1));
  Alcotest.(check int) "miss takes default" (-1) (It.get t 9 ~default:(-1));
  Alcotest.(check bool) "mem hit" true (It.mem t 7);
  Alcotest.(check bool) "mem miss" false (It.mem t 9);
  Alcotest.(check (option int)) "find_opt" (Some 1) (It.find_opt t 7);
  It.remove t 5;
  Alcotest.(check bool) "removed" false (It.mem t 5);
  Alcotest.(check int) "length after remove" 1 (It.length t);
  (* reinsert must land on (or probe past) the tombstone *)
  It.set t 5 7;
  Alcotest.(check int) "reinsert over tombstone" 7 (It.get t 5 ~default:(-1));
  Alcotest.(check bool) "negative keys rejected on set" true
    (try
       It.set t (-3) 0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "negative key reads as miss" (-1) (It.get t (-3) ~default:(-1));
  It.clear t;
  Alcotest.(check int) "cleared" 0 (It.length t)

let test_int_table_growth () =
  let t = It.create ~capacity:4 () in
  for k = 0 to 999 do
    It.set t k (k * 3)
  done;
  Alcotest.(check int) "length across rehashes" 1000 (It.length t);
  let ok = ref true in
  for k = 0 to 999 do
    if It.get t k ~default:(-1) <> k * 3 then ok := false
  done;
  Alcotest.(check bool) "values survive rehash" true !ok;
  Alcotest.(check int) "fold visits each live entry once" 1000
    (It.fold (fun _ _ acc -> acc + 1) t 0)

(* Tombstone churn: repeated remove/reinsert over the same small key space
   must neither lose entries nor let dead slots break probe chains. *)
let test_int_table_tombstone_churn () =
  let t = It.create ~capacity:8 () in
  for round = 0 to 99 do
    for k = 0 to 15 do
      It.set t k (round + k)
    done;
    for k = 0 to 15 do
      if k mod 2 = 0 then It.remove t k
    done
  done;
  Alcotest.(check int) "odd keys live" 8 (It.length t);
  for k = 0 to 15 do
    if k mod 2 = 0 then Alcotest.(check int) "even removed" (-1) (It.get t k ~default:(-1))
    else Alcotest.(check int) "odd kept" (99 + k) (It.get t k ~default:(-1))
  done

let prop_int_table_matches_hashtbl =
  QCheck.Test.make ~name:"int_table agrees with Hashtbl under random ops" ~count:200
    QCheck.(list (pair (int_range 0 2) (int_range 0 60)))
    (fun ops ->
      let t = It.create () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            It.set t k (k * 7);
            Hashtbl.replace h k (k * 7)
          | 1 ->
            It.remove t k;
            Hashtbl.remove h k
          | _ -> ignore (It.mem t k))
        ops;
      It.length t = Hashtbl.length h
      && Hashtbl.fold (fun k v acc -> acc && It.get t k ~default:min_int = v) h true
      && List.for_all (fun (_, k) -> It.mem t k = Hashtbl.mem h k) ops)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops any input in sorted order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~prio:x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:200
    QCheck.(pair (float_range 0. 100.) (list_of_size (Gen.int_range 1 40) (float_range (-50.) 50.)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ---------------- Series ---------------- *)

let test_series_basics () =
  let s = Series.create ~name:"x" in
  Series.add s ~time:0. 1.;
  Series.add s ~time:1. 2.;
  Series.add s ~time:2. 3.;
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "last" (Some (2., 3.)) (Series.last s)

let test_series_resample () =
  let s = Series.create ~name:"x" in
  Series.add s ~time:1. 10.;
  Series.add s ~time:3. 20.;
  let pts = Series.resample s ~step:1. ~until:4. in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "piecewise-constant grid"
    [ (0., 0.); (1., 10.); (2., 10.); (3., 20.); (4., 20.) ]
    pts

let test_series_csv () =
  let a = Series.create ~name:"a" and b = Series.create ~name:"b" in
  List.iter (fun t -> Series.add a ~time:t (t *. 2.)) [ 0.; 1.; 2. ];
  List.iter (fun t -> Series.add b ~time:t (t +. 10.)) [ 0.; 1.; 2. ];
  let out = Format.asprintf "%a" (fun fmt s -> Series.pp_csv fmt s) [ a; b ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check string) "header" "time,a,b" (List.hd lines);
  Alcotest.(check int) "rows" 4 (List.length lines);
  Alcotest.(check bool) "values present" true
    (List.exists (fun l -> l = "2.000,4.0000,12.0000") lines)

let test_series_ascii_renders () =
  let s = Series.create ~name:"wave" in
  for i = 0 to 20 do
    Series.add s ~time:(float_of_int i) (float_of_int (i mod 5))
  done;
  let out = Format.asprintf "%a" (fun fmt x -> Series.pp_ascii ~width:40 ~height:6 fmt x) [ s ] in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chart body drawn" true (String.contains out '*');
  Alcotest.(check bool) "legend includes the name" true (contains out "wave")

let () =
  let qcheck =
    List.map Test_seed.to_alcotest
      [ prop_heap_sorts; prop_percentile_within_range; prop_int_table_matches_hashtbl ]
  in
  Alcotest.run "ff_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed dependence" `Quick test_prng_seed_dependence;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "unbiased small bound" `Quick test_prng_int_unbiased_small_bound;
          Alcotest.test_case "pow2 stream unchanged" `Quick test_prng_pow2_stream_unchanged;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
          Alcotest.test_case "ewma" `Quick test_ewma;
          Alcotest.test_case "window counter" `Quick test_window_counter;
          Alcotest.test_case "window counter long gap" `Quick test_window_counter_long_gap;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "pop releases values" `Quick test_heap_pop_releases;
          Alcotest.test_case "float values" `Quick test_heap_float_values;
        ] );
      ( "int_table",
        [
          Alcotest.test_case "basics" `Quick test_int_table_basics;
          Alcotest.test_case "growth" `Quick test_int_table_growth;
          Alcotest.test_case "tombstone churn" `Quick test_int_table_tombstone_churn;
        ] );
      ( "series",
        [
          Alcotest.test_case "basics" `Quick test_series_basics;
          Alcotest.test_case "resample" `Quick test_series_resample;
          Alcotest.test_case "csv rendering" `Quick test_series_csv;
          Alcotest.test_case "ascii rendering" `Quick test_series_ascii_renders;
        ] );
      ("properties", qcheck);
    ]
