(* Tests for Ff_dataplane: packets, resources, registers, sketches, bloom
   filters, HashPipe, match-action tables, PPM IR analysis. *)

module Packet = Ff_dataplane.Packet
module Resource = Ff_dataplane.Resource
module Register = Ff_dataplane.Register
module Sketch = Ff_dataplane.Sketch
module Bloom = Ff_dataplane.Bloom
module Hashpipe = Ff_dataplane.Hashpipe
module Match_table = Ff_dataplane.Match_table
module Ppm = Ff_dataplane.Ppm
module Cuckoo = Ff_dataplane.Cuckoo
module Cuckoo_ref = Ff_oracle.Oracle.Cuckoo_ref

(* ---------------- Packet ---------------- *)

let test_packet_defaults () =
  let p = Packet.make ~src:1 ~dst:2 ~flow:3 ~birth:0. () in
  Alcotest.(check int) "default size" 1000 p.Packet.size;
  Alcotest.(check int) "default ttl" 64 p.Packet.ttl;
  Alcotest.(check bool) "data not control" false (Packet.is_control p);
  let probe =
    Packet.make ~src:1 ~dst:2 ~flow:3 ~birth:0.
      ~payload:(Packet.Mode_probe { attack = Packet.Lfa; epoch = 1; origin = 0; activate = true;
                                    region_ttl = 4 })
      ()
  in
  Alcotest.(check int) "control size" Packet.control_size probe.Packet.size;
  Alcotest.(check bool) "probe is control" true (Packet.is_control probe)

let test_packet_uids_unique () =
  let a = Packet.make ~src:0 ~dst:1 ~flow:1 ~birth:0. () in
  let b = Packet.make ~src:0 ~dst:1 ~flow:1 ~birth:0. () in
  Alcotest.(check bool) "unique uids" true (a.Packet.uid <> b.Packet.uid)

let test_packet_tags () =
  let p = Packet.make ~src:0 ~dst:1 ~flow:1 ~birth:0. () in
  Alcotest.(check (option (float 0.))) "missing" None (Packet.tag_value p "k");
  Packet.tag p "k" 1.5;
  Alcotest.(check (option (float 0.))) "set" (Some 1.5) (Packet.tag_value p "k");
  Packet.tag p "k" 2.5;
  Alcotest.(check (option (float 0.))) "overwritten" (Some 2.5) (Packet.tag_value p "k");
  Alcotest.(check int) "no duplicate keys" 1 (List.length p.Packet.tags)

(* ---------------- Resource ---------------- *)

let test_resource_arith () =
  let a = Resource.make ~stages:2. ~sram_kb:100. () in
  let b = Resource.make ~stages:1. ~tcam:50. () in
  let s = Resource.add a b in
  Alcotest.(check (float 0.)) "stages add" 3. s.Resource.stages;
  Alcotest.(check (float 0.)) "tcam add" 50. s.Resource.tcam;
  let d = Resource.sub s b in
  Alcotest.(check (float 0.)) "sub" 2. d.Resource.stages;
  Alcotest.(check (float 0.)) "scale" 4. (Resource.scale 2. a).Resource.stages

let test_resource_fits () =
  let cap = Resource.tofino_like in
  Alcotest.(check bool) "zero fits" true (Resource.fits ~need:Resource.zero ~within:cap);
  Alcotest.(check bool) "cap fits itself" true (Resource.fits ~need:cap ~within:cap);
  let over = Resource.add cap (Resource.make ~stages:1. ()) in
  Alcotest.(check bool) "over does not fit" false (Resource.fits ~need:over ~within:cap)

let test_dominant_share () =
  let cap = Resource.make ~stages:10. ~sram_kb:100. ~alus:10. ~tcam:10. ~hash_units:10. () in
  let need = Resource.make ~stages:5. ~sram_kb:10. () in
  Alcotest.(check (float 1e-9)) "dominant" 0.5 (Resource.dominant_share ~need ~within:cap);
  let impossible = Resource.make ~stages:1. () in
  let no_cap = Resource.make ~sram_kb:10. () in
  Alcotest.(check (float 0.)) "infinite when impossible" infinity
    (Resource.dominant_share ~need:impossible ~within:no_cap)

(* ---------------- Registers and meters ---------------- *)

let test_array_reg () =
  let r = Register.Array_reg.create ~name:"r" ~slots:16 () in
  Register.Array_reg.set r 42 3.0;
  Alcotest.(check (float 0.)) "get" 3.0 (Register.Array_reg.get r 42);
  Alcotest.(check (float 0.)) "bump" 5.0 (Register.Array_reg.bump r 42 2.0);
  Register.Array_reg.reset r;
  Alcotest.(check (float 0.)) "reset" 0.0 (Register.Array_reg.get r 42)

let test_array_reg_dump_load () =
  let r = Register.Array_reg.create ~name:"state" ~slots:8 () in
  Register.Array_reg.set_slot r 1 10.;
  Register.Array_reg.set_slot r 5 20.;
  let dump = Register.Array_reg.dump r in
  Alcotest.(check int) "two non-zero entries" 2 (List.length dump);
  let r2 = Register.Array_reg.create ~name:"state" ~slots:8 () in
  Register.Array_reg.load r2 dump;
  Alcotest.(check (float 0.)) "slot 1 restored" 10. (Register.Array_reg.get_slot r2 1);
  Alcotest.(check (float 0.)) "slot 5 restored" 20. (Register.Array_reg.get_slot r2 5)

let test_meter () =
  let m = Register.Meter.create ~rate:1000. ~burst:500. in
  Alcotest.(check bool) "burst allowed" true (Register.Meter.allow m ~now:0. ~bytes:500.);
  Alcotest.(check bool) "empty bucket refuses" false (Register.Meter.allow m ~now:0. ~bytes:100.);
  (* after 0.1 s, 100 bytes of tokens have accrued *)
  Alcotest.(check bool) "refill allows" true (Register.Meter.allow m ~now:0.1 ~bytes:100.);
  Alcotest.(check bool) "but not more" false (Register.Meter.allow m ~now:0.1 ~bytes:100.)

(* ---------------- Sketch ---------------- *)

let test_sketch_never_underestimates () =
  let s = Sketch.create ~rows:4 ~cols:64 () in
  for key = 0 to 99 do
    Sketch.add s key (float_of_int (key + 1))
  done;
  for key = 0 to 99 do
    Alcotest.(check bool) "estimate >= truth" true
      (Sketch.estimate s key >= float_of_int (key + 1))
  done

let test_sketch_exact_when_sparse () =
  let s = Sketch.create ~rows:4 ~cols:1024 () in
  Sketch.add s 7 5.;
  Sketch.add s 9 3.;
  Alcotest.(check (float 0.)) "sparse exact" 5. (Sketch.estimate s 7);
  Alcotest.(check (float 0.)) "total" 8. (Sketch.total s)

let test_sketch_merge () =
  let a = Sketch.create ~rows:3 ~cols:128 () in
  let b = Sketch.create ~rows:3 ~cols:128 () in
  Sketch.add a 1 10.;
  Sketch.add b 1 5.;
  Sketch.add b 2 7.;
  Sketch.merge_into ~dst:a ~src:b;
  Alcotest.(check bool) "merged estimate" true (Sketch.estimate a 1 >= 15.);
  Alcotest.(check bool) "merged other key" true (Sketch.estimate a 2 >= 7.);
  Alcotest.(check (float 0.)) "merged total" 22. (Sketch.total a)

let test_sketch_merge_incompatible () =
  let a = Sketch.create ~rows:3 ~cols:128 () in
  let b = Sketch.create ~rows:4 ~cols:128 () in
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Sketch.merge_into: incompatible sketches") (fun () ->
      Sketch.merge_into ~dst:a ~src:b)

let test_sketch_serialize_absorb () =
  let a = Sketch.create ~rows:3 ~cols:128 () in
  Sketch.add a 5 9.;
  let snap = Sketch.serialize a in
  let b = Sketch.create ~rows:3 ~cols:128 () in
  Sketch.absorb b snap;
  Alcotest.(check bool) "absorbed" true (Sketch.estimate b 5 >= 9.)

let test_sketch_roundtrip_total_exact () =
  (* regression: absorb used to re-sum cell values into [total], inflating
     it by a factor of [rows] on every serialize->absorb round trip *)
  let a = Sketch.create ~rows:4 ~cols:64 () in
  for key = 0 to 49 do
    Sketch.add a key (float_of_int key +. 0.5)
  done;
  let b = Sketch.create ~rows:4 ~cols:64 () in
  Sketch.absorb b (Sketch.serialize a);
  Alcotest.(check (float 0.)) "total survives exactly" (Sketch.total a) (Sketch.total b);
  (* absorbing into a non-empty sketch adds, not replaces *)
  Sketch.absorb b (Sketch.serialize a);
  Alcotest.(check (float 0.)) "second absorb accumulates" (2. *. Sketch.total a)
    (Sketch.total b)

let prop_sketch_upper_bound =
  QCheck.Test.make ~name:"count-min estimate always >= true count" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_range 0 50))
    (fun keys ->
      let s = Sketch.create ~rows:4 ~cols:32 () in
      List.iter (fun k -> Sketch.add s k 1.) keys;
      List.for_all
        (fun k ->
          let truth = float_of_int (List.length (List.filter (( = ) k) keys)) in
          Sketch.estimate s k >= truth)
        (List.sort_uniq compare keys))

(* ---------------- Bloom ---------------- *)

let test_bloom_no_false_negatives () =
  let b = Bloom.create ~bits:1024 ~hashes:3 () in
  for k = 0 to 99 do
    Bloom.add b k
  done;
  for k = 0 to 99 do
    Alcotest.(check bool) "member" true (Bloom.mem b k)
  done

let test_bloom_fp_rate_reasonable () =
  let b = Bloom.create ~bits:4096 ~hashes:3 () in
  for k = 0 to 199 do
    Bloom.add b k
  done;
  let fps = ref 0 in
  for k = 10_000 to 10_999 do
    if Bloom.mem b k then incr fps
  done;
  let analytic = Bloom.expected_fp_rate b ~inserted:200 in
  Alcotest.(check bool) "observed fp within 3x analytic + slack" true
    (float_of_int !fps /. 1000. <= (3. *. analytic) +. 0.02)

let test_bloom_reset () =
  let b = Bloom.create ~bits:256 ~hashes:2 () in
  Bloom.add b 1;
  Bloom.reset b;
  Alcotest.(check int) "no set bits" 0 (Bloom.count_set_bits b)

let prop_bloom_membership =
  QCheck.Test.make ~name:"bloom: every inserted key is a member" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 100) int)
    (fun keys ->
      let b = Bloom.create ~bits:2048 ~hashes:4 () in
      List.iter (Bloom.add b) keys;
      List.for_all (Bloom.mem b) keys)

(* ---------------- HashPipe ---------------- *)

let test_hashpipe_tracks_heavy () =
  let hp = Hashpipe.create ~stages:4 ~slots_per_stage:32 () in
  (* heavy key 1000 interleaved with light noise *)
  for i = 0 to 999 do
    Hashpipe.update hp ~key:1000 ~weight:1.;
    Hashpipe.update hp ~key:(i mod 200) ~weight:1.
  done;
  let hh = Hashpipe.heavy_hitters hp ~threshold:400. in
  Alcotest.(check bool) "heavy key found" true (List.mem_assoc 1000 hh)

let test_hashpipe_no_overestimate () =
  let hp = Hashpipe.create ~stages:2 ~slots_per_stage:8 () in
  for _ = 1 to 50 do
    Hashpipe.update hp ~key:1 ~weight:2.
  done;
  Alcotest.(check bool) "count <= truth" true (Hashpipe.count hp ~key:1 <= 100.)

let test_hashpipe_reset () =
  let hp = Hashpipe.create ~stages:2 ~slots_per_stage:8 () in
  Hashpipe.update hp ~key:1 ~weight:1.;
  Hashpipe.reset hp;
  Alcotest.(check (float 0.)) "reset" 0. (Hashpipe.count hp ~key:1);
  Alcotest.(check (list int)) "no residents" [] (Hashpipe.resident_keys hp)

(* ---------------- Cuckoo filter ---------------- *)

(* The differential ring: every property drives the filter and the naive
   multiset oracle ([Ff_oracle.Oracle.Cuckoo_ref]) over the same random
   inputs. Case counts scale 5x under the @deep alias (DEEP=1). *)
let ck_count n = if Test_seed.deep then 5 * n else n

let test_cuckoo_basics () =
  let c = Cuckoo.create ~capacity:64 () in
  Alcotest.(check bool) "insert" true (Cuckoo.insert c 42);
  Alcotest.(check bool) "member" true (Cuckoo.member c 42);
  Alcotest.(check int) "size" 1 (Cuckoo.size c);
  Alcotest.(check bool) "delete" true (Cuckoo.delete c 42);
  Alcotest.(check bool) "gone" false (Cuckoo.member c 42);
  Alcotest.(check int) "empty" 0 (Cuckoo.size c);
  Alcotest.(check bool) "delete absent" false (Cuckoo.delete c 42)

let test_cuckoo_delete_one_copy () =
  let c = Cuckoo.create ~capacity:64 () in
  Alcotest.(check bool) "first copy" true (Cuckoo.insert c 7);
  Alcotest.(check bool) "second copy" true (Cuckoo.insert c 7);
  Alcotest.(check int) "two slots" 2 (Cuckoo.size c);
  Alcotest.(check bool) "delete one" true (Cuckoo.delete c 7);
  Alcotest.(check bool) "still member" true (Cuckoo.member c 7);
  Alcotest.(check bool) "delete other" true (Cuckoo.delete c 7);
  Alcotest.(check bool) "now gone" false (Cuckoo.member c 7)

let test_cuckoo_resource_per_entry () =
  let small = Cuckoo.resource (Cuckoo.create ~capacity:256 ()) in
  let large = Cuckoo.resource (Cuckoo.create ~capacity:4096 ()) in
  Alcotest.(check bool) "sram grows with capacity" true
    (large.Resource.sram_kb >= 8. *. small.Resource.sram_kb);
  Alcotest.(check (float 0.)) "no tcam" 0. large.Resource.tcam

let test_cuckoo_absorb_union () =
  let a = Cuckoo.create ~capacity:128 () in
  let b = Cuckoo.create ~capacity:128 () in
  for k = 0 to 39 do
    ignore (Cuckoo.insert a k)
  done;
  for k = 100 to 139 do
    ignore (Cuckoo.insert b k)
  done;
  Cuckoo.absorb b (Cuckoo.serialize a);
  for k = 0 to 39 do
    Alcotest.(check bool) "migrated member" true (Cuckoo.member b k)
  done;
  for k = 100 to 139 do
    Alcotest.(check bool) "resident member" true (Cuckoo.member b k)
  done

let test_cuckoo_absorb_overflow_stashes () =
  (* both filters nearly full: the union cannot fit, but membership must
     survive anyway — overflow goes to the stash, never to the floor *)
  let a = Cuckoo.create ~capacity:64 ~fp_bits:8 () in
  let b = Cuckoo.create ~capacity:64 ~fp_bits:8 () in
  for k = 0 to 57 do
    ignore (Cuckoo.insert a k)
  done;
  for k = 1000 to 1057 do
    ignore (Cuckoo.insert b k)
  done;
  Cuckoo.absorb b (Cuckoo.serialize a);
  Alcotest.(check bool) "stash used" true (Cuckoo.stash_size b > 0);
  for k = 0 to 57 do
    Alcotest.(check bool) "migrated member survives overflow" true (Cuckoo.member b k)
  done

let test_cuckoo_absorb_geometry_mismatch () =
  let a = Cuckoo.create ~capacity:64 () in
  let b = Cuckoo.create ~capacity:128 () in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Cuckoo.absorb: geometry/seed mismatch") (fun () ->
      Cuckoo.absorb b (Cuckoo.serialize a))

let prop_cuckoo_no_false_negatives =
  QCheck.Test.make ~name:"cuckoo: never a false negative vs oracle"
    ~count:(ck_count 100)
    QCheck.(list_of_size (Gen.int_range 0 300) (pair (int_range 0 500) bool))
    (fun ops ->
      let c = Cuckoo.create ~capacity:1024 () in
      let o = Cuckoo_ref.create () in
      List.iter
        (fun (key, del) ->
          if del && Cuckoo_ref.member o key then begin
            (* deletions mirror tracker usage: only keys actually held *)
            let ok = Cuckoo.delete c key in
            ignore (Cuckoo_ref.delete o key);
            if not ok then failwith "delete of held key failed"
          end
          else if not del then if Cuckoo.insert c key then Cuckoo_ref.insert o key)
        ops;
      List.for_all (Cuckoo.member c) (Cuckoo_ref.keys o))

let prop_cuckoo_delete_exactly_one =
  QCheck.Test.make ~name:"cuckoo: deletion removes exactly one copy"
    ~count:(ck_count 100)
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 30))
    (fun keys ->
      let c = Cuckoo.create ~capacity:1024 () in
      let o = Cuckoo_ref.create () in
      List.iter
        (fun k -> if Cuckoo.insert c k then Cuckoo_ref.insert o k)
        keys;
      (* drain each key one copy at a time; sizes must track in lockstep *)
      List.for_all
        (fun k ->
          let copies = Cuckoo_ref.count o k in
          let ok = ref true in
          for _ = 1 to copies do
            let before = Cuckoo.size c in
            ok := !ok && Cuckoo.delete c k && Cuckoo.size c = before - 1;
            ignore (Cuckoo_ref.delete o k)
          done;
          !ok)
        (List.sort_uniq compare keys)
      && Cuckoo.size c = 0)

let prop_cuckoo_fp_within_analytic_bound =
  QCheck.Test.make ~name:"cuckoo: observed fp rate within 2x analytic bound"
    ~count:(ck_count 10)
    QCheck.(int_range 0 10_000)
    (fun key_base ->
      (* narrow 8-bit fingerprints make the analytic rate large enough to
         measure against 2000 probes without sampling noise dominating *)
      let c = Cuckoo.create ~fp_bits:8 ~capacity:1024 () in
      let inserted = 768 (* load 0.75 *) in
      for k = key_base to key_base + inserted - 1 do
        ignore (Cuckoo.insert c k)
      done;
      let fps = ref 0 in
      let probes = 2000 in
      for k = key_base + 100_000 to key_base + 100_000 + probes - 1 do
        if Cuckoo.member c k then incr fps
      done;
      let analytic = Cuckoo.expected_fp_rate c in
      float_of_int !fps /. float_of_int probes <= (2. *. analytic) +. 0.01)

let prop_cuckoo_no_insert_fail_below_threshold =
  QCheck.Test.make ~name:"cuckoo: inserts never fail below occupancy threshold"
    ~count:(ck_count 50)
    QCheck.(pair (int_range 0 100_000) (int_range 1 972))
    (fun (key_base, n) ->
      (* 972 = floor(0.95 * 1024): distinct keys up to the documented
         threshold must always place, kicks included *)
      let c = Cuckoo.create ~capacity:1024 () in
      let all_ok = ref true in
      for k = key_base to key_base + n - 1 do
        all_ok := !all_ok && Cuckoo.insert c k
      done;
      !all_ok && Cuckoo.failed_inserts c = 0
      && Cuckoo.occupancy c <= Cuckoo.occupancy_threshold)

let prop_cuckoo_serialize_roundtrip =
  QCheck.Test.make ~name:"cuckoo: serialize/absorb into empty preserves members"
    ~count:(ck_count 100)
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 1000))
    (fun keys ->
      let c = Cuckoo.create ~capacity:512 () in
      let inserted = List.filter (Cuckoo.insert c) keys in
      let d = Cuckoo.create ~capacity:512 () in
      Cuckoo.absorb d (Cuckoo.serialize c);
      Cuckoo.size d = Cuckoo.size c && List.for_all (Cuckoo.member d) inserted)

(* ---------------- Match tables ---------------- *)

let test_exact_table () =
  let t = Match_table.Exact.create ~capacity:2 () in
  Match_table.Exact.insert t ~key:1 "a";
  Match_table.Exact.insert t ~key:2 "b";
  Alcotest.(check (option string)) "hit" (Some "a") (Match_table.Exact.lookup t ~key:1);
  Alcotest.(check (option string)) "miss" None (Match_table.Exact.lookup t ~key:3);
  Alcotest.check_raises "full" (Failure "table full") (fun () ->
      Match_table.Exact.insert t ~key:3 "c");
  Match_table.Exact.remove t ~key:1;
  Alcotest.(check int) "size" 1 (Match_table.Exact.size t)

let test_lpm_longest_prefix_wins () =
  let t = Match_table.Lpm.create () in
  Match_table.Lpm.insert t ~prefix:0x0A000000 ~len:8 "wide";
  Match_table.Lpm.insert t ~prefix:0x0A0A0000 ~len:16 "narrow";
  Alcotest.(check (option string)) "longest wins" (Some "narrow")
    (Match_table.Lpm.lookup t ~key:0x0A0A0101);
  Alcotest.(check (option string)) "fallback" (Some "wide")
    (Match_table.Lpm.lookup t ~key:0x0A010101);
  Alcotest.(check (option string)) "miss" None (Match_table.Lpm.lookup t ~key:0x0B000001);
  Match_table.Lpm.remove t ~prefix:0x0A0A0000 ~len:16;
  Alcotest.(check (option string)) "after remove" (Some "wide")
    (Match_table.Lpm.lookup t ~key:0x0A0A0101)

let test_lpm_default_route () =
  let t = Match_table.Lpm.create () in
  Match_table.Lpm.insert t ~prefix:0 ~len:0 "default";
  Alcotest.(check (option string)) "default matches all" (Some "default")
    (Match_table.Lpm.lookup t ~key:0x12345678)

let test_ternary_priority () =
  let t = Match_table.Ternary.create () in
  Match_table.Ternary.insert t ~value:0x10 ~mask:0xF0 ~priority:1 "low";
  Match_table.Ternary.insert t ~value:0x12 ~mask:0xFF ~priority:10 "high";
  Alcotest.(check (option string)) "priority wins" (Some "high")
    (Match_table.Ternary.lookup t ~key:0x12);
  Alcotest.(check (option string)) "fallthrough" (Some "low")
    (Match_table.Ternary.lookup t ~key:0x13)

(* ---------------- PPM IR analysis ---------------- *)

let sample_spec =
  Ppm.make_spec ~name:"s" ~booster:"b" ~role:Ppm.Detection
    ~resources:(Resource.make ~stages:1. ())
    [
      Ppm.Set_meta ("m", Ppm.Reg_read ("counts", Ppm.Hash [ "src" ]));
      Ppm.Reg_write ("counts", Ppm.Hash [ "src" ], Ppm.Binop (Ppm.Add, Ppm.Meta "m", Ppm.Const 1.));
      Ppm.If
        ( Ppm.Cmp (Ppm.Gt, Ppm.Meta "m", Ppm.Const 10.),
          [ Ppm.Reg_write ("alarms", Ppm.Const 0., Ppm.Const 1.) ],
          [] );
    ]

let test_ppm_reads_writes () =
  Alcotest.(check (list string)) "reads" [ "counts" ] (Ppm.registers_read sample_spec);
  Alcotest.(check (list string)) "writes" [ "alarms"; "counts" ]
    (Ppm.registers_written sample_spec)

let test_ppm_state_shared () =
  let reader =
    Ppm.make_spec ~name:"r" ~booster:"b" ~role:Ppm.Mitigation ~resources:Resource.zero
      [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Reg_read ("alarms", Ppm.Const 0.), Ppm.Const 0.)) ]
  in
  Alcotest.(check (list string)) "shared register" [ "alarms" ]
    (Ppm.state_shared sample_spec reader)

let test_ppm_body_size () =
  Alcotest.(check int) "statements counted recursively" 4 (Ppm.body_size sample_spec)

let () =
  let qcheck =
    List.map Test_seed.to_alcotest
      [
        prop_sketch_upper_bound;
        prop_bloom_membership;
        prop_cuckoo_no_false_negatives;
        prop_cuckoo_delete_exactly_one;
        prop_cuckoo_fp_within_analytic_bound;
        prop_cuckoo_no_insert_fail_below_threshold;
        prop_cuckoo_serialize_roundtrip;
      ]
  in
  Alcotest.run "ff_dataplane"
    [
      ( "packet",
        [
          Alcotest.test_case "defaults" `Quick test_packet_defaults;
          Alcotest.test_case "unique uids" `Quick test_packet_uids_unique;
          Alcotest.test_case "tags" `Quick test_packet_tags;
        ] );
      ( "resource",
        [
          Alcotest.test_case "arithmetic" `Quick test_resource_arith;
          Alcotest.test_case "fits" `Quick test_resource_fits;
          Alcotest.test_case "dominant share" `Quick test_dominant_share;
        ] );
      ( "registers",
        [
          Alcotest.test_case "array register" `Quick test_array_reg;
          Alcotest.test_case "dump/load" `Quick test_array_reg_dump_load;
          Alcotest.test_case "meter" `Quick test_meter;
        ] );
      ( "sketch",
        [
          Alcotest.test_case "never underestimates" `Quick test_sketch_never_underestimates;
          Alcotest.test_case "sparse exact" `Quick test_sketch_exact_when_sparse;
          Alcotest.test_case "merge" `Quick test_sketch_merge;
          Alcotest.test_case "merge incompatible" `Quick test_sketch_merge_incompatible;
          Alcotest.test_case "serialize/absorb" `Quick test_sketch_serialize_absorb;
          Alcotest.test_case "roundtrip total exact" `Quick
            test_sketch_roundtrip_total_exact;
        ] );
      ( "bloom",
        [
          Alcotest.test_case "no false negatives" `Quick test_bloom_no_false_negatives;
          Alcotest.test_case "fp rate" `Quick test_bloom_fp_rate_reasonable;
          Alcotest.test_case "reset" `Quick test_bloom_reset;
        ] );
      ( "hashpipe",
        [
          Alcotest.test_case "tracks heavy keys" `Quick test_hashpipe_tracks_heavy;
          Alcotest.test_case "no overestimate" `Quick test_hashpipe_no_overestimate;
          Alcotest.test_case "reset" `Quick test_hashpipe_reset;
        ] );
      ( "cuckoo",
        [
          Alcotest.test_case "basics" `Quick test_cuckoo_basics;
          Alcotest.test_case "delete one copy" `Quick test_cuckoo_delete_one_copy;
          Alcotest.test_case "per-entry resource" `Quick test_cuckoo_resource_per_entry;
          Alcotest.test_case "absorb union" `Quick test_cuckoo_absorb_union;
          Alcotest.test_case "absorb overflow stashes" `Quick
            test_cuckoo_absorb_overflow_stashes;
          Alcotest.test_case "absorb geometry mismatch" `Quick
            test_cuckoo_absorb_geometry_mismatch;
        ] );
      ( "tables",
        [
          Alcotest.test_case "exact" `Quick test_exact_table;
          Alcotest.test_case "lpm longest prefix" `Quick test_lpm_longest_prefix_wins;
          Alcotest.test_case "lpm default route" `Quick test_lpm_default_route;
          Alcotest.test_case "ternary priority" `Quick test_ternary_priority;
        ] );
      ( "ppm",
        [
          Alcotest.test_case "reads/writes" `Quick test_ppm_reads_writes;
          Alcotest.test_case "state shared" `Quick test_ppm_state_shared;
          Alcotest.test_case "body size" `Quick test_ppm_body_size;
        ] );
      ("properties", qcheck);
    ]
