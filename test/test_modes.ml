(* Tests for Ff_modes: the distributed mode-change protocol and the static
   stability analysis. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet
module Protocol = Ff_modes.Protocol
module Stability = Ff_modes.Stability

let ring_net n =
  let topo = T.ring ~n () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  (topo, engine, net)

let modes_for = function
  | Packet.Lfa -> [ "reroute"; "obfuscate" ]
  | Packet.Volumetric -> [ "drop" ]
  | Packet.Pulsing -> [ "reroute" ]
  | Packet.Recon -> [ "obfuscate" ]
  | Packet.Synflood -> [ "syn_guard" ]

let test_alarm_propagates () =
  let _, engine, net = ring_net 6 in
  let p = Protocol.create net ~modes_for () in
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:1.;
  List.iter
    (fun sw ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d rerouting" sw)
        true (Protocol.active p ~sw "reroute");
      Alcotest.(check bool)
        (Printf.sprintf "switch %d obfuscating" sw)
        true
        (Protocol.active p ~sw "obfuscate"))
    (Net.switch_ids net);
  Alcotest.(check int) "six activations logged" 6 (List.length (Protocol.log p));
  Alcotest.(check bool) "vars mirror" true
    (Hashtbl.find (Net.switch net 3).Net.vars (Protocol.mode_var "reroute") = 1.)

let test_region_ttl_bounds_propagation () =
  (* a long ring with a small region ttl: far switches stay in default *)
  let _, engine, net = ring_net 12 in
  let p = Protocol.create net ~region_ttl:3 ~modes_for () in
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "near switch active" true (Protocol.active p ~sw:1 "reroute");
  Alcotest.(check bool) "antipode stays default" false (Protocol.active p ~sw:6 "reroute")

let test_clear_after_dwell () =
  let _, engine, net = ring_net 4 in
  let p = Protocol.create net ~min_dwell:1.0 ~modes_for () in
  ignore net;
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:0.1;
  (* immediate clear: blocked by the dwell, applied when it expires *)
  Protocol.clear_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:0.5;
  Alcotest.(check bool) "still active during dwell" true (Protocol.active p ~sw:0 "reroute");
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "cleared after dwell" false (Protocol.active p ~sw:0 "reroute");
  Alcotest.(check bool) "cleared everywhere" false (Protocol.active_anywhere p "reroute")

let test_stale_epoch_ignored () =
  let _, engine, net = ring_net 4 in
  let p = Protocol.create net ~min_dwell:0.1 ~modes_for () in
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:1.;
  Protocol.clear_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "cleared" false (Protocol.active p ~sw:2 "reroute");
  (* replay the original activation probe: its epoch is stale *)
  let stale =
    Packet.make ~src:0 ~dst:0 ~flow:0 ~birth:2.
      ~payload:(Packet.Mode_probe
                  { attack = Packet.Lfa; epoch = 1; origin = 0; activate = true; region_ttl = 8 })
      ()
  in
  Net.inject_at_switch net ~sw:2 stale;
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "stale epoch has no effect" false (Protocol.active p ~sw:2 "reroute")

let test_coexisting_modes () =
  (* mixed attack vectors: different modes active at different regions *)
  let _, engine, net = ring_net 8 in
  let p = Protocol.create net ~region_ttl:2 ~modes_for () in
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Protocol.raise_alarm p ~sw:4 Packet.Volumetric;
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "lfa modes near 0" true (Protocol.active p ~sw:0 "reroute");
  Alcotest.(check bool) "volumetric modes near 4" true (Protocol.active p ~sw:4 "drop");
  Alcotest.(check bool) "attack state queryable" true (Protocol.attack_active p ~sw:0 Packet.Lfa);
  (* the two switch-sets are mostly disjoint *)
  let reroute_sws = Protocol.switches_with_mode p "reroute" in
  Alcotest.(check bool) "region scoped" false (List.mem 4 reroute_sws)

let test_flap_holddown_grows () =
  let _, engine, net = ring_net 4 in
  let p = Protocol.create net ~min_dwell:0.2 ~flap_window:60. ~modes_for () in
  ignore net;
  (* attacker tries to force mode oscillation *)
  for _ = 1 to 4 do
    Protocol.raise_alarm p ~sw:0 Packet.Lfa;
    let t = Engine.now engine +. 0.3 in
    Engine.schedule engine ~at:t (fun () -> Protocol.clear_alarm p ~sw:0 Packet.Lfa);
    Engine.run engine ~until:(t +. 3.)
  done;
  Alcotest.(check bool) "hold-down escalated" true (Protocol.current_dwell p Packet.Lfa > 0.2);
  Alcotest.(check bool) "epochs advanced" true (Protocol.epoch p Packet.Lfa >= 8)

let test_flap_list_bounded () =
  (* regression: with a very long flap window, sustained oscillation used
     to grow the activation-timestamp list without bound. It is now capped
     at the depth where the holddown saturates at max_holddown. *)
  let _, engine, net = ring_net 4 in
  let p =
    Protocol.create net ~min_dwell:0.2 ~flap_window:1e9 ~max_holddown:16. ~modes_for ()
  in
  ignore net;
  for _ = 1 to 40 do
    Protocol.raise_alarm p ~sw:0 Packet.Lfa;
    let t = Engine.now engine +. 0.3 in
    Engine.schedule engine ~at:t (fun () -> Protocol.clear_alarm p ~sw:0 Packet.Lfa);
    Engine.run engine ~until:(t +. 20.)
  done;
  (* 2 + ceil(log2(16/0.2)) = 9 *)
  let entries = Protocol.flap_entries p Packet.Lfa in
  Alcotest.(check bool)
    (Printf.sprintf "flap list capped (%d <= 9)" entries)
    true
    (entries <= 9);
  Alcotest.(check bool) "holddown saturated" true
    (Protocol.current_dwell p Packet.Lfa = 16.)

let test_overlapping_attacks_share_mode () =
  (* Lfa and Pulsing both map to "reroute": clearing one must keep it *)
  let _, engine, net = ring_net 4 in
  let p = Protocol.create net ~min_dwell:0.1 ~modes_for () in
  ignore net;
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Protocol.raise_alarm p ~sw:0 Packet.Pulsing;
  Engine.run engine ~until:1.;
  Protocol.clear_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "reroute kept by pulsing" true (Protocol.active p ~sw:0 "reroute");
  Alcotest.(check bool) "obfuscate dropped with lfa" false (Protocol.active p ~sw:0 "obfuscate");
  Protocol.clear_alarm p ~sw:0 Packet.Pulsing;
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "reroute cleared at last" false (Protocol.active p ~sw:0 "reroute")

(* ---------------- Detection synchronization ---------------- *)

module Sync = Ff_modes.Sync

let test_sync_views_converge () =
  let _, engine, net = ring_net 6 in
  (* two participants with static local views *)
  let views = Hashtbl.create 4 in
  Hashtbl.replace views 0 [ (100, 5.); (200, 1.) ];
  Hashtbl.replace views 3 [ (100, 7.) ];
  let sync =
    Sync.create net ~participants:[ 0; 3 ] ~period:0.2
      ~local_view:(fun ~sw -> try Hashtbl.find views sw with Not_found -> [])
      ()
  in
  Engine.run engine ~until:2.;
  Alcotest.(check (float 0.01)) "switch 0 sees the global sum" 12.
    (Sync.global_value sync ~sw:0 ~key:100);
  Alcotest.(check (float 0.01)) "switch 3 sees the global sum" 12.
    (Sync.global_value sync ~sw:3 ~key:100);
  Alcotest.(check (float 0.01)) "remote part at 0" 7.
    (Sync.remote_contribution sync ~sw:0 ~key:100);
  Alcotest.(check (float 0.01)) "key known only at one origin" 1.
    (Sync.global_value sync ~sw:3 ~key:200);
  Alcotest.(check bool) "rounds advanced" true (Sync.rounds sync >= 5);
  (* non-participants also hear the probes (they flood) *)
  Alcotest.(check (float 0.01)) "observer switch sums remotes" 12.
    (Sync.remote_contribution sync ~sw:1 ~key:100)

let test_sync_staleness_expires () =
  let _, engine, net = ring_net 4 in
  let live = ref true in
  let sync =
    Sync.create net ~participants:[ 0; 2 ] ~period:0.2 ~staleness:0.5
      ~local_view:(fun ~sw -> if sw = 0 && !live then [ (7, 4.) ] else [])
      ()
  in
  Engine.run engine ~until:1.;
  Alcotest.(check (float 0.01)) "advert heard" 4. (Sync.global_value sync ~sw:2 ~key:7);
  live := false;
  Engine.run engine ~until:3.;
  Alcotest.(check (float 0.01)) "stale advert expired" 0.
    (Sync.global_value sync ~sw:2 ~key:7)

let test_sync_threshold_suppresses () =
  let _, engine, net = ring_net 4 in
  let sync =
    Sync.create net ~participants:[ 0; 2 ] ~period:0.2 ~threshold:10.
      ~local_view:(fun ~sw -> if sw = 0 then [ (1, 3.) ] else [])
      ()
  in
  Engine.run engine ~until:1.5;
  (* below threshold: not advertised, so the remote sees nothing *)
  Alcotest.(check (float 0.01)) "small entries not synced" 0.
    (Sync.remote_contribution sync ~sw:2 ~key:1)

let test_sync_classes_isolated () =
  let _, engine, net = ring_net 4 in
  let s1 =
    Sync.create net ~participants:[ 0 ] ~period:0.2 ~probe_class:5
      ~local_view:(fun ~sw:_ -> [ (1, 100.) ])
      ()
  in
  let s2 =
    Sync.create net ~participants:[ 2 ] ~period:0.2 ~probe_class:6
      ~local_view:(fun ~sw:_ -> [ (1, 7.) ])
      ()
  in
  Engine.run engine ~until:1.5;
  Alcotest.(check (float 0.01)) "class 5 sees only class 5" 100.
    (Sync.global_value s1 ~sw:1 ~key:1);
  Alcotest.(check (float 0.01)) "class 6 sees only class 6" 7.
    (Sync.global_value s2 ~sw:1 ~key:1)

(* ---------------- Stability analysis ---------------- *)

let test_stability_protocol_automaton_stable () =
  let a = Stability.of_protocol ~modes_for ~dwell:1.0 in
  let report = Stability.analyze a in
  Alcotest.(check bool) "protocol automaton is stable" true (Stability.stable a);
  Alcotest.(check int) "no issues" 0 (List.length report.Stability.issues);
  Alcotest.(check bool) "explores many states" true
    (List.length report.Stability.reachable >= 8)

let test_stability_zero_dwell_detected () =
  let a = Stability.of_protocol ~modes_for ~dwell:0. in
  let report = Stability.analyze a in
  Alcotest.(check bool) "zero dwell flagged" true
    (List.exists
       (function Stability.Zero_dwell_cycle _ -> true | _ -> false)
       report.Stability.issues)

let test_stability_unreachable_default () =
  let a =
    {
      Stability.initial = [];
      transitions =
        [
          { Stability.from_modes = []; trigger = "alarm"; to_modes = [ "stuck" ]; dwell = 1. };
          (* no way back from "stuck" *)
        ];
    }
  in
  let report = Stability.analyze a in
  Alcotest.(check bool) "trap state flagged" true
    (List.exists
       (function Stability.Unreachable_default st -> st = [ "stuck" ] | _ -> false)
       report.Stability.issues)

let test_stability_nondeterminism () =
  let a =
    {
      Stability.initial = [];
      transitions =
        [
          { Stability.from_modes = []; trigger = "alarm"; to_modes = [ "a" ]; dwell = 1. };
          { Stability.from_modes = []; trigger = "alarm"; to_modes = [ "b" ]; dwell = 1. };
          { Stability.from_modes = [ "a" ]; trigger = "clear"; to_modes = []; dwell = 1. };
          { Stability.from_modes = [ "b" ]; trigger = "clear"; to_modes = []; dwell = 1. };
        ];
    }
  in
  let report = Stability.analyze a in
  Alcotest.(check bool) "duplicate trigger flagged" true
    (List.exists
       (function Stability.Nondeterministic ([], "alarm") -> true | _ -> false)
       report.Stability.issues)

(* Random alarm/clear sequences: afterwards, with enough settle time,
   every switch's mode vars agree with its active-attack set, and if the
   last action was a clear followed by quiescence the network returns to
   default. *)
let prop_protocol_vars_consistent =
  QCheck.Test.make ~name:"mode vars mirror active attacks after any alarm/clear sequence"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 1 8) (pair bool (int_range 0 3)))
    (fun script ->
      let topo = T.ring ~n:5 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let p = Protocol.create net ~min_dwell:0.1 ~modes_for () in
      let attack_of = function
        | 0 -> Packet.Lfa
        | 1 -> Packet.Volumetric
        | 2 -> Packet.Pulsing
        | _ -> Packet.Recon
      in
      List.iteri
        (fun i (raise_it, a) ->
          Engine.schedule engine
            ~at:(float_of_int i *. 2.)
            (fun () ->
              if raise_it then Protocol.raise_alarm p ~sw:0 (attack_of a)
              else Protocol.clear_alarm p ~sw:0 (attack_of a)))
        script;
      Engine.run engine ~until:(float_of_int (List.length script) *. 2. +. 10.);
      (* consistency: a mode var is set iff some active attack maps to it *)
      List.for_all
        (fun sw ->
          List.for_all
            (fun mode ->
              let var = Protocol.active p ~sw mode in
              let derived =
                List.exists
                  (fun a -> Protocol.attack_active p ~sw a && List.mem mode (modes_for a))
                  Packet.all_attack_kinds
              in
              var = derived)
            [ "reroute"; "obfuscate"; "drop" ])
        (Net.switch_ids net))

let prop_protocol_automaton_stable_any_dwell =
  QCheck.Test.make ~name:"protocol automaton stable for any positive dwell" ~count:50
    QCheck.(float_range 0.001 60.)
    (fun dwell -> Stability.stable (Stability.of_protocol ~modes_for ~dwell))

let () =
  let qcheck =
    List.map Test_seed.to_alcotest
      [ prop_protocol_automaton_stable_any_dwell; prop_protocol_vars_consistent ]
  in
  Alcotest.run "ff_modes"
    [
      ( "protocol",
        [
          Alcotest.test_case "alarm propagates" `Quick test_alarm_propagates;
          Alcotest.test_case "region ttl bounds" `Quick test_region_ttl_bounds_propagation;
          Alcotest.test_case "clear after dwell" `Quick test_clear_after_dwell;
          Alcotest.test_case "stale epoch ignored" `Quick test_stale_epoch_ignored;
          Alcotest.test_case "coexisting modes" `Quick test_coexisting_modes;
          Alcotest.test_case "flap hold-down grows" `Quick test_flap_holddown_grows;
          Alcotest.test_case "flap list bounded" `Quick test_flap_list_bounded;
          Alcotest.test_case "overlapping attacks share mode" `Quick
            test_overlapping_attacks_share_mode;
        ] );
      ( "sync",
        [
          Alcotest.test_case "views converge" `Quick test_sync_views_converge;
          Alcotest.test_case "staleness expires" `Quick test_sync_staleness_expires;
          Alcotest.test_case "threshold suppresses" `Quick test_sync_threshold_suppresses;
          Alcotest.test_case "classes isolated" `Quick test_sync_classes_isolated;
        ] );
      ( "stability",
        [
          Alcotest.test_case "protocol automaton stable" `Quick
            test_stability_protocol_automaton_stable;
          Alcotest.test_case "zero dwell detected" `Quick test_stability_zero_dwell_detected;
          Alcotest.test_case "unreachable default" `Quick test_stability_unreachable_default;
          Alcotest.test_case "nondeterminism" `Quick test_stability_nondeterminism;
        ] );
      ("properties", qcheck);
    ]
