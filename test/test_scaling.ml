(* Tests for Ff_scaling: FEC codec, in-band state transfer under loss,
   switch repurposing, replication/failover. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Fec = Ff_scaling.Fec
module Transfer = Ff_scaling.Transfer
module Repurpose = Ff_scaling.Repurpose
module Loss = Ff_scaling.Loss
module Replicate = Ff_scaling.Replicate
module Prng = Ff_util.Prng

let entries n = List.init n (fun i -> (Printf.sprintf "reg[%d]" i, float_of_int i *. 1.5))

(* ---------------- FEC ---------------- *)

let test_fec_roundtrip () =
  let e = entries 37 in
  let chunks = Fec.encode ~group_size:4 ~per_chunk:8 e in
  Alcotest.(check (option (list (pair string (float 0.))))) "lossless roundtrip" (Some e)
    (Fec.decode chunks)

let test_fec_parity_counts () =
  let chunks = Fec.encode ~group_size:4 ~per_chunk:8 (entries 64) in
  (* 8 data chunks -> 2 groups -> 2 parity chunks *)
  Alcotest.(check int) "total chunks" 10 (List.length chunks);
  Alcotest.(check int) "data chunks" 8 (List.length (Fec.data_chunks chunks));
  Alcotest.(check int) "groups" 2 (Fec.group_count chunks)

let test_fec_recovers_single_loss () =
  let e = entries 30 in
  let chunks = Fec.encode ~group_size:4 ~per_chunk:8 e in
  (* drop one data chunk from each group *)
  let dropped =
    List.filter (fun (c : Fec.chunk) -> not (c.Fec.index = 1 && not c.Fec.parity)) chunks
  in
  Alcotest.(check bool) "chunks dropped" true (List.length dropped < List.length chunks);
  Alcotest.(check (option (list (pair string (float 0.))))) "reconstructed" (Some e)
    (Fec.decode dropped)

let test_fec_fails_on_double_loss () =
  let e = entries 30 in
  let chunks = Fec.encode ~group_size:4 ~per_chunk:8 e in
  let dropped =
    List.filter
      (fun (c : Fec.chunk) -> not (c.Fec.group = 0 && (c.Fec.index = 0 || c.Fec.index = 1)))
      chunks
  in
  Alcotest.(check (option (list (pair string (float 0.))))) "two losses in one group" None
    (Fec.decode dropped)

let test_fec_parity_loss_harmless () =
  let e = entries 30 in
  let chunks = Fec.encode ~group_size:4 ~per_chunk:8 e in
  let dropped = Fec.data_chunks chunks in
  Alcotest.(check (option (list (pair string (float 0.))))) "parity lost, data intact" (Some e)
    (Fec.decode dropped)

let test_fec_empty () =
  Alcotest.(check (option (list (pair string (float 0.))))) "empty" (Some []) (Fec.decode [])

let test_xor_entries_involution () =
  let a = [ ("abc", 1.5); ("de", -2.25) ] in
  let b = [ ("xyzw", 3.75); ("q", 0.5) ] in
  let x = Fec.xor_entries [ a; b ] in
  let back = Fec.xor_entries [ x; b ] in
  (* xoring back recovers a (padded keys are stripped only by decode,
     so compare by re-xoring to zero) *)
  let zero = Fec.xor_entries [ back; a ] in
  List.iter (fun (_, v) -> Alcotest.(check (float 0.)) "values cancel" 0. v) zero

let prop_fec_roundtrip =
  QCheck.Test.make ~name:"fec roundtrip for any entry list and geometry" ~count:100
    QCheck.(triple (int_range 1 6) (int_range 1 10) (list_of_size (Gen.int_range 0 60) (float_range (-100.) 100.)))
    (fun (group_size, per_chunk, values) ->
      let e = List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) values in
      Fec.decode (Fec.encode ~group_size ~per_chunk e) = Some e)

let prop_fec_single_loss_recovery =
  QCheck.Test.make ~name:"fec recovers any single data-chunk loss" ~count:100
    QCheck.(pair (int_range 0 3) (list_of_size (Gen.int_range 8 40) (float_range 0. 10.)))
    (fun (drop_index, values) ->
      let e = List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) values in
      let chunks = Fec.encode ~group_size:4 ~per_chunk:4 e in
      let victim =
        List.filter (fun (c : Fec.chunk) -> c.Fec.group = 0 && not c.Fec.parity) chunks
        |> fun l -> List.nth_opt l (drop_index mod List.length l)
      in
      match victim with
      | None -> true
      | Some v ->
        let remaining = List.filter (fun c -> c <> v) chunks in
        Fec.decode remaining = Some e)

(* The parity budget, exactly: one XOR parity chunk per group recovers any
   single chunk loss in that group — data or parity, in every group at
   once — and two data losses in one group are cleanly unrecoverable
   (decode says None, never a wrong reconstruction). *)
let prop_fec_any_loss_within_budget =
  QCheck.Test.make ~name:"fec recovers every loss pattern within the parity budget" ~count:100
    ~long_factor:5
    QCheck.(
      quad (int_range 1 6) (int_range 1 10)
        (list_of_size (Gen.int_range 0 80) (float_range (-100.) 100.))
        (int_bound 1_000_000))
    (fun (group_size, per_chunk, values, seed) ->
      let e = List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) values in
      let chunks = Fec.encode ~group_size ~per_chunk e in
      let rng = Prng.create ~seed:(seed + 3) in
      (* per group, independently: keep all, drop the parity, or drop one
         data chunk *)
      let victims =
        List.init (Fec.group_count chunks) (fun g ->
            let data =
              List.filter (fun (c : Fec.chunk) -> c.Fec.group = g && not c.Fec.parity) chunks
            in
            match Prng.int rng 3 with
            | 0 -> []
            | 1 -> List.filter (fun (c : Fec.chunk) -> c.Fec.group = g && c.Fec.parity) chunks
            | _ -> (
              match data with
              | [] -> []
              | _ -> [ List.nth data (Prng.int rng (List.length data)) ]))
        |> List.concat
      in
      let remaining = List.filter (fun c -> not (List.memq c victims)) chunks in
      Fec.decode remaining = Some e)

let prop_fec_beyond_budget_fails_cleanly =
  QCheck.Test.make ~name:"fec refuses two data losses in one group" ~count:100 ~long_factor:5
    QCheck.(
      triple (int_range 2 6)
        (list_of_size (Gen.int_range 4 80) (float_range (-100.) 100.))
        (int_bound 1_000_000))
    (fun (group_size, values, seed) ->
      let e = List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) values in
      let chunks = Fec.encode ~group_size ~per_chunk:4 e in
      let rng = Prng.create ~seed:(seed + 7) in
      let groups =
        List.init (Fec.group_count chunks) (fun g ->
            List.filter (fun (c : Fec.chunk) -> c.Fec.group = g && not c.Fec.parity) chunks)
        |> List.filter (fun data -> List.length data >= 2)
      in
      match groups with
      | [] -> true (* no group holds two data chunks; nothing to lose *)
      | _ ->
        let data = List.nth groups (Prng.int rng (List.length groups)) in
        let i = Prng.int rng (List.length data) in
        let j = (i + 1 + Prng.int rng (List.length data - 1)) mod List.length data in
        let v1 = List.nth data i and v2 = List.nth data j in
        let remaining = List.filter (fun c -> not (c == v1 || c == v2)) chunks in
        Fec.decode remaining = None)

(* ---------------- Transfer ---------------- *)

let transfer_net () =
  let topo = T.linear ~n:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let s0 = (T.node_by_name topo "s0").T.id in
  let s3 = (T.node_by_name topo "s3").T.id in
  (topo, engine, net, s0, s3)

let test_transfer_lossless () =
  let _, engine, net, s0, s3 = transfer_net () in
  let e = entries 50 in
  let got = ref None in
  let x = Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries:e
      ~on_complete:(fun r -> got := Some r) () in
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "complete" true (Transfer.complete x);
  Alcotest.(check (option (list (pair string (float 0.))))) "payload intact" (Some e) !got;
  Alcotest.(check int) "no retransmissions" 0 (Transfer.retransmitted_groups x);
  Alcotest.(check int) "no fec work needed" 0 (Transfer.fec_recoveries x)

let test_transfer_with_loss_fec () =
  let _, engine, net, s0, s3 = transfer_net () in
  let mid = s0 + 1 in
  let _loss = Loss.install net ~sw:mid ~prob:0.15 ~classes:Loss.State_chunks_only () in
  let e = entries 200 in
  let got = ref None in
  let x = Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries:e
      ~on_complete:(fun r -> got := Some r) () in
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "complete despite loss" true (Transfer.complete x);
  Alcotest.(check (option (list (pair string (float 0.))))) "payload intact" (Some e) !got;
  Alcotest.(check bool) "fec recovered some groups" true
    (Transfer.fec_recoveries x + Transfer.retransmitted_groups x > 0)

let test_transfer_without_fec_needs_more_retx () =
  let run_with_fec fec seed =
    let _, engine, net, s0, s3 = transfer_net () in
    let _loss = Loss.install net ~sw:(s0 + 1) ~prob:0.15 ~seed ~classes:Loss.State_chunks_only () in
    let x = Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries:(entries 200) ~fec
        ~on_complete:(fun _ -> ()) () in
    Engine.run engine ~until:20.;
    (Transfer.complete x, Transfer.retransmitted_groups x)
  in
  let totals fec =
    List.fold_left
      (fun (c, r) seed ->
        let complete, retx = run_with_fec fec seed in
        ((if complete then c + 1 else c), r + retx))
      (0, 0) [ 1; 2; 3; 4; 5 ]
  in
  let complete_fec, retx_fec = totals true in
  let complete_nofec, retx_nofec = totals false in
  Alcotest.(check int) "fec runs all complete" 5 complete_fec;
  Alcotest.(check int) "nofec runs all complete" 5 complete_nofec;
  Alcotest.(check bool) "fec needs fewer retransmissions" true (retx_fec < retx_nofec)

let test_transfer_empty () =
  let _, engine, net, s0, s3 = transfer_net () in
  let got = ref None in
  let x = Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries:[] ~on_complete:(fun r -> got := Some r) () in
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "trivially complete" true (Transfer.complete x);
  Alcotest.(check (option (list (pair string (float 0.))))) "empty payload" (Some []) !got

(* ---------------- Repurposing ---------------- *)

let test_repurpose_downtime_and_recovery () =
  let topo = T.Fig2.build () in
  let lm = topo in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  (* route a flow through m1 explicitly *)
  let src = List.hd lm.T.Fig2.normal_sources in
  let dst = lm.T.Fig2.victim in
  let mid_of (l : T.link) = if l.T.a = lm.T.Fig2.agg then l.T.b else l.T.a in
  let m1 = mid_of (List.hd lm.T.Fig2.critical) in
  let full_path =
    [ src; Net.access_switch net ~host:src; lm.T.Fig2.agg; m1; lm.T.Fig2.victim_agg ]
    @ [ Net.access_switch net ~host:dst; dst ]
  in
  Net.install_path net ~dst full_path;
  (match T.shortest_path lm.T.Fig2.topo ~src:dst ~dst:src with
  | Some p -> Net.install_path net ~dst:src p
  | None -> Alcotest.fail "no reverse path");
  let flow = Ff_netsim.Flow.Cbr.start net ~src ~dst ~rate_pps:100. () in
  let installed = ref false and done_at = ref 0. in
  Engine.schedule engine ~at:2. (fun () ->
      Repurpose.repurpose net ~sw:m1 ~downtime:1.0
        ~install:(fun () -> installed := true)
        ~on_done:(fun o ->
          done_at := o.Repurpose.completed_at)
        ());
  Engine.run engine ~until:6.;
  Alcotest.(check bool) "program installed" true !installed;
  Alcotest.(check (float 0.01)) "downtime respected" 3.0 !done_at;
  Alcotest.(check bool) "switch back up" true (Net.switch net m1).Net.up;
  (* fast reroute kept most traffic flowing: >= 80% of 400 s-worth *)
  Alcotest.(check bool) "traffic survived via backup" true
    (Ff_netsim.Flow.Cbr.delivered_bytes flow > 0.8 *. 100. *. 1000. *. 6.)

let test_repurpose_moves_state () =
  let _, engine, net, s0, s3 = transfer_net () in
  let store = ref (entries 20) in
  let restored = ref [] in
  Repurpose.repurpose net ~sw:s0 ~downtime:0.5 ~state_to:s3
    ~snapshot:(fun () -> !store)
    ~restore:(fun e -> restored := e)
    ~install:(fun () -> store := [])
    ~on_done:(fun o -> Alcotest.(check int) "entries shipped" 20 o.Repurpose.state_moved)
    ();
  Engine.run engine ~until:5.;
  Alcotest.(check (list (pair string (float 0.)))) "state made the round trip" (entries 20)
    !restored

let test_install_backup_routes () =
  let topo = T.ring ~n:5 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  (* route around the ring through switch 1 *)
  let h0 = (T.node_by_name topo "h0").T.id in
  let h2 = (T.node_by_name topo "h2").T.id in
  Net.set_route net ~sw:0 ~dst:h2 ~next_hop:1;
  Net.set_route net ~sw:1 ~dst:h2 ~next_hop:2;
  let n = Repurpose.install_backup_routes net ~around:1 in
  Alcotest.(check bool) "backups installed" true (n >= 1);
  (* switch 0's backup for h2 avoids switch 1 (goes the other way) *)
  ignore h0;
  let backup = Net.backup_route_lookup net ~sw:0 ~dst:h2 in
  Alcotest.(check (option int)) "backup goes around" (Some 4) backup

(* ---------------- Loss injection ---------------- *)

let test_loss_probability () =
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  let s0 = (T.node_by_name topo "s0").T.id in
  Net.set_route net ~sw:s0 ~dst:h1 ~next_hop:h1;
  let loss = Loss.install net ~sw:s0 ~prob:0.3 () in
  let f = Ff_netsim.Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:500. () in
  Engine.run engine ~until:4.;
  let observed = float_of_int (Loss.dropped loss) /. float_of_int (Loss.seen loss) in
  Alcotest.(check bool) "drop rate near 0.3" true (Float.abs (observed -. 0.3) < 0.05);
  Alcotest.(check bool) "goodput reduced accordingly" true
    (Ff_netsim.Flow.Cbr.delivered_bytes f < 0.8 *. float_of_int (Ff_netsim.Flow.Cbr.sent_packets f * 1000))

let test_loss_gilbert_elliott_bursts () =
  (* bad_loss = 1, good_loss = 0, p_bg = 0.25: drops come in runs of mean
     length 1/p_bg = 4, and the long-run drop rate is the stationary bad
     fraction p_gb /. (p_gb +. p_bg) *)
  let p_gb = 0.1 and p_bg = 0.25 in
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  let s0 = (T.node_by_name topo "s0").T.id in
  Net.set_route net ~sw:s0 ~dst:h1 ~next_hop:h1;
  let loss =
    Loss.install net ~sw:s0 ~prob:0.3 ~seed:5
      ~model:(Loss.Gilbert_elliott { p_gb; p_bg; good_loss = 0.; bad_loss = 1. })
      ()
  in
  ignore (Ff_netsim.Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:2000. ());
  Engine.run engine ~until:10.;
  let seen = Loss.seen loss and dropped = Loss.dropped loss in
  Alcotest.(check bool) "enough samples" true (seen > 10_000);
  let rate = float_of_int dropped /. float_of_int seen in
  let expected_rate = p_gb /. (p_gb +. p_bg) in
  Alcotest.(check bool)
    (Printf.sprintf "long-run rate %.3f near %.3f" rate expected_rate)
    true
    (Float.abs (rate -. expected_rate) < 0.2 *. expected_rate);
  let mean = Loss.mean_burst_len loss in
  Alcotest.(check bool)
    (Printf.sprintf "mean burst %.2f near %.2f" mean (1. /. p_bg))
    true
    (Float.abs (mean -. (1. /. p_bg)) < 0.2 /. p_bg);
  Alcotest.(check bool) "many distinct bursts" true (Loss.bursts loss > 100)

let test_loss_set_enabled_window () =
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  let s0 = (T.node_by_name topo "s0").T.id in
  Net.set_route net ~sw:s0 ~dst:h1 ~next_hop:h1;
  let loss = Loss.install net ~sw:s0 ~prob:1.0 () in
  Loss.set_enabled loss false;
  ignore (Ff_netsim.Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:100. ());
  Engine.schedule engine ~at:1. (fun () -> Loss.set_enabled loss true);
  Engine.schedule engine ~at:2. (fun () -> Loss.set_enabled loss false);
  Engine.run engine ~until:3.;
  (* only the packets inside the [1,2) window were even considered *)
  Alcotest.(check bool) "disabled stage sees nothing" true (Loss.seen loss < 110);
  Alcotest.(check int) "all considered packets dropped" (Loss.seen loss) (Loss.dropped loss);
  Alcotest.(check bool) "window actually dropped packets" true (Loss.dropped loss > 50)

(* ---------------- Replication ---------------- *)

let test_replicate_and_failover () =
  let _, engine, net, s0, s3 = transfer_net () in
  let state = ref (entries 10) in
  let r = Replicate.start net ~primary:s0 ~replica:s3 ~period:0.5
      ~snapshot:(fun () -> !state) () in
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "several copies done" true (Replicate.copies_completed r >= 3);
  Alcotest.(check (list (pair string (float 0.)))) "replica holds the state" (entries 10)
    (Replicate.last_copy r);
  (* primary dies; failover restores from the replica *)
  state := [];
  Net.set_switch_up net ~sw:s0 false;
  let recovered = ref [] in
  Alcotest.(check bool) "failover succeeds" true
    (Replicate.failover r ~restore:(fun e -> recovered := e));
  Alcotest.(check (list (pair string (float 0.)))) "state recovered" (entries 10) !recovered;
  Replicate.stop r;
  let copies = Replicate.copies_completed r in
  Engine.run engine ~until:6.;
  (* at most one in-flight transfer may still land after stop *)
  Alcotest.(check bool) "no new rounds after stop" true
    (Replicate.copies_completed r <= copies + 1)

let () =
  let qcheck =
    List.map Test_seed.to_alcotest
      [
        prop_fec_roundtrip;
        prop_fec_single_loss_recovery;
        prop_fec_any_loss_within_budget;
        prop_fec_beyond_budget_fails_cleanly;
      ]
  in
  Alcotest.run "ff_scaling"
    [
      ( "fec",
        [
          Alcotest.test_case "roundtrip" `Quick test_fec_roundtrip;
          Alcotest.test_case "parity counts" `Quick test_fec_parity_counts;
          Alcotest.test_case "recovers single loss" `Quick test_fec_recovers_single_loss;
          Alcotest.test_case "fails on double loss" `Quick test_fec_fails_on_double_loss;
          Alcotest.test_case "parity loss harmless" `Quick test_fec_parity_loss_harmless;
          Alcotest.test_case "empty" `Quick test_fec_empty;
          Alcotest.test_case "xor involution" `Quick test_xor_entries_involution;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "lossless" `Quick test_transfer_lossless;
          Alcotest.test_case "loss with fec" `Quick test_transfer_with_loss_fec;
          Alcotest.test_case "fec vs retransmit" `Quick test_transfer_without_fec_needs_more_retx;
          Alcotest.test_case "empty transfer" `Quick test_transfer_empty;
        ] );
      ( "repurpose",
        [
          Alcotest.test_case "downtime and recovery" `Quick test_repurpose_downtime_and_recovery;
          Alcotest.test_case "state round trip" `Quick test_repurpose_moves_state;
          Alcotest.test_case "backup routes" `Quick test_install_backup_routes;
        ] );
      ( "loss",
        [
          Alcotest.test_case "probability" `Quick test_loss_probability;
          Alcotest.test_case "gilbert-elliott bursts" `Quick test_loss_gilbert_elliott_bursts;
          Alcotest.test_case "enable window" `Quick test_loss_set_enabled_window;
        ] );
      ( "replication",
        [ Alcotest.test_case "replicate and failover" `Quick test_replicate_and_failover ] );
      ("properties", qcheck);
    ]
