(* One explicit seed for every property suite.

   QCheck_alcotest's default random state comes from [Random.self_init]
   (or the QCHECK_SEED env var), so a failing property printed a
   counterexample that the next run could not reproduce. Every suite
   routes its QCheck tests through {!to_alcotest} below instead: the
   generator state is derived from one process-wide seed (TEST_SEED env,
   default 421) plus the test's own name, no ambient [Random] state
   anywhere. The seed is printed at startup, so a failure reproduces
   with exactly [TEST_SEED=<printed> dune runtest]. *)

let seed =
  match Sys.getenv_opt "TEST_SEED" with
  | None | Some "" -> 421
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "TEST_SEED must be an int, got %S" s))

let () = Printf.eprintf "[test-seed] TEST_SEED=%d (env TEST_SEED reproduces)\n%!" seed

let rand_for name = Random.State.make [| seed; Hashtbl.hash name |]
(* per-test derivation: suites stay decorrelated from each other without
   sharing mutable state, and adding a test never reshuffles the others *)

let to_alcotest ?long ?speed_level (QCheck2.Test.Test cell as t) =
  QCheck_alcotest.to_alcotest ?long ?speed_level ~rand:(rand_for (QCheck2.Test.get_name cell)) t

(* Deep sweeps (dune build @deep) set DEEP=1: property counts scale up
   and the model checker widens to 4-5 switch graphs. *)
let deep = match Sys.getenv_opt "DEEP" with Some ("1" | "true") -> true | _ -> false
