(* Differential testing: the optimized Engine/Net/Protocol stack against
   the Ff_oracle reference semantics, over randomized programs.

   Each property drives both implementations through the *same* schedule
   calls in the *same* order, so both sequence counters assign matching
   tie-break keys and the runs are comparable event for event. The
   assertions then demand bit-identical answers — delivery instants,
   sorted drop-reason counts, per-directed-link transmit counts, epochs —
   so any divergence, down to one ULP of float arithmetic or one
   reordered same-instant event, fails the property with its seed. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet
module Protocol = Ff_modes.Protocol
module Chaos = Ff_chaos.Chaos
module Prng = Ff_util.Prng
module Oracle = Ff_oracle.Oracle
module Simnet = Ff_oracle.Simnet

(* ---------------- shared generators ---------------- *)

(* A random connected topology: 3-7 switches (spanning tree plus a few
   chords), one host per switch, capacities and delays drawn from small
   sets so scenarios mix fast and slow links. With [uniform] every link
   costs the same per hop, so probe floods propagate along hop-shortest
   paths — required by the mode-fold differential, whose region spec is
   hop distance (a low-delay detour would otherwise deliver the first,
   region-defining probe over a longer-hop path with a smaller TTL). *)
let random_topology ?(uniform = false) rng =
  let n_sw = 3 + Prng.int rng 5 in
  let topo = T.create () in
  let sws =
    Array.init n_sw (fun i -> T.add_node topo ~kind:T.Switch ~name:(Printf.sprintf "s%d" i))
  in
  let caps = [| 5_000_000.; 10_000_000.; 20_000_000. |] in
  let delays = [| 0.0005; 0.001; 0.002 |] in
  let link a b =
    let capacity = if uniform then 10_000_000. else Prng.choose rng caps in
    let delay = if uniform then 0.001 else Prng.choose rng delays in
    ignore (T.add_link topo ~capacity ~delay a b)
  in
  for i = 1 to n_sw - 1 do
    link sws.(i) sws.(Prng.int rng i)
  done;
  for _ = 1 to Prng.int rng n_sw do
    let a = Prng.int rng n_sw and b = Prng.int rng n_sw in
    if a <> b && T.find_link topo sws.(a) sws.(b) = None then link sws.(a) sws.(b)
  done;
  let hosts =
    Array.mapi
      (fun i sw ->
        let h = T.add_node topo ~kind:T.Host ~name:(Printf.sprintf "h%d" i) in
        link h sw;
        h)
      sws
  in
  (topo, sws, hosts)

let switch_neighbors topo sw =
  List.filter_map
    (fun (peer, _) ->
      match (T.node topo peer).T.kind with T.Switch -> Some peer | T.Host -> None)
    (T.neighbors topo sw)

(* ---------------- event-order differential ---------------- *)

(* Random two-level schedules: top-level events at grid times (so ties are
   common), each spawning leaf events at offsets from its own fire time.
   Labels are assigned at schedule time in both implementations, so the
   recorded pop orders must match exactly — this pins Engine's two-lane
   (time, seq) dispatch to the single sorted-list Oracle.Queue. *)
let run_engine_program prog =
  let e = Engine.create () in
  let order = ref [] in
  let next = ref 0 in
  let fresh () =
    let l = !next in
    incr next;
    l
  in
  List.iter
    (fun (at, children) ->
      let l = fresh () in
      Engine.schedule e ~at (fun () ->
          order := l :: !order;
          List.iter
            (fun d ->
              let cl = fresh () in
              Engine.schedule e ~at:(Engine.now e +. d) (fun () -> order := cl :: !order))
            children))
    prog;
  Engine.run e ~until:1_000.;
  List.rev !order

let run_oracle_program prog =
  let order = ref [] in
  let next = ref 0 in
  let fresh () =
    let l = !next in
    incr next;
    l
  in
  let q = ref Oracle.Queue.empty in
  let push ~at v = q := Oracle.Queue.push !q ~at v in
  List.iter (fun (at, children) -> push ~at (fresh (), children)) prog;
  let rec loop () =
    match Oracle.Queue.pop !q with
    | None -> ()
    | Some ((at, _seq, (l, children)), rest) ->
      q := rest;
      order := l :: !order;
      List.iter (fun d -> push ~at:(at +. d) (fresh (), [])) children;
      loop ()
  in
  loop ();
  List.rev !order

let prop_event_order =
  QCheck.Test.make ~name:"engine pops in the oracle queue's (time, seq) order" ~count:150
    ~long_factor:5
    QCheck.(
      list_of_size (Gen.int_range 0 12)
        (pair (int_range 0 8) (list_of_size (Gen.int_range 0 3) (int_range 0 6))))
    (fun raw ->
      let prog =
        List.map
          (fun (slot, kids) ->
            (0.5 *. float_of_int slot, List.map (fun k -> 0.25 *. float_of_int k) kids))
          raw
      in
      run_engine_program prog = run_oracle_program prog)

(* ---------------- live-routing differential ---------------- *)

let prop_live_routing =
  QCheck.Test.make ~name:"live_shortest_path agrees with edge-list relaxation" ~count:80
    ~long_factor:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 17) in
      let topo, sws, hosts = random_topology rng in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      (* kill a few switches and links *)
      let killed_sws =
        Array.to_list sws |> List.filter (fun _ -> Prng.int rng 6 = 0)
      in
      let killed_links =
        T.links topo
        |> List.filter (fun _ -> Prng.int rng 5 = 0)
        |> List.map (fun (l : T.link) -> (min l.T.a l.T.b, max l.T.a l.T.b))
      in
      List.iter (fun sw -> Net.set_switch_up net ~sw false) killed_sws;
      List.iter (fun (a, b) -> Net.set_link_up net ~a ~b false) killed_links;
      let live_link a b = not (List.mem (min a b, max a b) killed_links) in
      let live_node nd =
        match (T.node topo nd).T.kind with
        | T.Host -> true
        | T.Switch -> not (List.mem nd killed_sws)
      in
      Array.iter
        (fun src ->
          Array.iter
            (fun dst ->
              if src <> dst then begin
                let real = Net.live_shortest_path net ~src ~dst in
                let ref_ = Oracle.Routing.shortest_path ~live_link ~live_node topo ~src ~dst in
                match (real, ref_) with
                | None, None -> ()
                | Some p, Some q ->
                  if List.length p <> List.length q then
                    QCheck.Test.fail_reportf "%d->%d: real length %d, oracle length %d" src
                      dst (List.length p) (List.length q);
                  (* the real path must itself be adjacency-valid and live *)
                  ignore (T.path_links topo p);
                  List.iter
                    (fun nd ->
                      if not (live_node nd) then
                        QCheck.Test.fail_reportf "%d->%d: real path transits dead node %d" src
                          dst nd)
                    p;
                  let rec edges = function
                    | a :: (b :: _ as rest) ->
                      if not (live_link a b) then
                        QCheck.Test.fail_reportf "%d->%d: real path crosses dead link %d-%d"
                          src dst a b;
                      edges rest
                    | _ -> ()
                  in
                  edges p
                | Some _, None ->
                  QCheck.Test.fail_reportf "%d->%d: real finds a path, oracle says unreachable"
                    src dst
                | None, Some _ ->
                  QCheck.Test.fail_reportf "%d->%d: oracle finds a path, real says unreachable"
                    src dst
              end)
            hosts)
        hosts;
      true)

(* ---------------- packet-delivery differential ---------------- *)

(* The tentpole property: a full random scenario — topology, routes,
   backup and pair-route overrides, link/switch fault scripts, several
   flows of randomly sized and spaced packets — executed on the real
   Engine + Net and on the naive Simnet, then compared field by field:
   exact delivery timestamps per flow, sorted drop-reason counts, and
   per-directed-link transmit counts. *)
let delivery_scenario seed =
  let rng = Prng.create ~seed:(seed + 1) in
  let topo, sws, hosts = random_topology rng in
  let n_sw = Array.length sws in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let sim = Simnet.create topo in
  let harness = Chaos.create net in
  (* record every host delivery, keyed by flow, in arrival order *)
  let real_deliveries : (int, float list) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun h ->
      (Net.host net h).Net.fallback_rx <-
        Some
          (fun pkt ->
            let f = pkt.Packet.flow in
            let prev = try Hashtbl.find real_deliveries f with Not_found -> [] in
            Hashtbl.replace real_deliveries f (Engine.now engine :: prev)))
    hosts;
  (* flows and their oracle-computed primary routes *)
  let n_flows = 1 + Prng.int rng 4 in
  let flows =
    List.init n_flows (fun f ->
        let si = Prng.int rng n_sw in
        let di = (si + 1 + Prng.int rng (n_sw - 1)) mod n_sw in
        (1000 + f, hosts.(si), hosts.(di)))
  in
  List.iter
    (fun (_f, src, dst) ->
      match Oracle.Routing.shortest_path topo ~src ~dst with
      | Some p ->
        Net.install_path net ~dst p;
        Simnet.install_path sim ~dst p
      | None -> ())
    flows;
  (* random backup and pair-route overrides, mirrored into both stacks;
     deliberately allowed to form detours or loops (TTL ends loops
     identically on both sides) *)
  List.iter
    (fun (_f, src, dst) ->
      if Prng.bool rng then begin
        let sw = sws.(Prng.int rng n_sw) in
        match switch_neighbors topo sw with
        | [] -> ()
        | nbrs ->
          let nh = List.nth nbrs (Prng.int rng (List.length nbrs)) in
          if Prng.bool rng then begin
            Net.set_backup_route net ~sw ~dst ~next_hop:nh;
            Simnet.set_backup_route sim ~sw ~dst ~next_hop:nh
          end
          else begin
            Net.set_pair_route net ~sw ~src ~dst ~next_hop:nh;
            Simnet.set_pair_route sim ~sw ~src ~dst ~next_hop:nh
          end
      end)
    flows;
  (* fault script: identical absolute instants on both sides *)
  let links = Array.of_list (T.links topo) in
  for _ = 1 to Prng.int rng 3 do
    let t0 = 0.2 +. Prng.float rng 1.5 in
    let heal = Prng.int rng 3 > 0 in
    let t1 = t0 +. 0.3 +. Prng.float rng 1.2 in
    if Prng.bool rng then begin
      let l = Prng.choose rng links in
      let a = l.T.a and b = l.T.b in
      Chaos.at harness ~time:t0 (Chaos.Link_down (a, b));
      Simnet.schedule sim ~at:t0 (fun () -> Simnet.set_link_up sim ~a ~b false);
      if heal then begin
        Chaos.at harness ~time:t1 (Chaos.Link_up (a, b));
        Simnet.schedule sim ~at:t1 (fun () -> Simnet.set_link_up sim ~a ~b true)
      end
    end
    else begin
      let sw = sws.(Prng.int rng n_sw) in
      Chaos.at harness ~time:t0 (Chaos.Switch_down sw);
      Simnet.schedule sim ~at:t0 (fun () -> Simnet.set_switch_up sim ~sw false);
      if heal then begin
        Chaos.at harness ~time:t1 (Chaos.Switch_up sw);
        Simnet.schedule sim ~at:t1 (fun () -> Simnet.set_switch_up sim ~sw true)
      end
    end
  done;
  (* traffic: departure instants computed once, handed to both stacks *)
  let sizes = [| 200; 600; 1000; 1400 |] in
  List.iter
    (fun (f, src, dst) ->
      let n_pkts = 3 + Prng.int rng 28 in
      let size = Prng.choose rng sizes in
      let ttl = 8 + Prng.int rng 56 in
      let gap_mean = 0.0008 +. Prng.float rng 0.004 in
      let t = ref (0.05 +. Prng.float rng 1.0) in
      for s = 0 to n_pkts - 1 do
        let at = !t in
        Engine.schedule engine ~at (fun () ->
            Net.send_from_host net (Packet.make_data ~size ~seq:s ~ttl ~src ~dst ~flow:f ~birth:at));
        Simnet.schedule sim ~at (fun () ->
            Simnet.send_from_host sim ~src ~dst ~flow:f ~size ~ttl);
        t := !t +. Prng.exponential rng ~mean:gap_mean
      done)
    flows;
  Engine.run engine ~until:12.0;
  Simnet.run sim ~until:12.0;
  (* compare: exact delivery instants per flow *)
  List.iter
    (fun (f, _src, _dst) ->
      let real =
        List.rev (try Hashtbl.find real_deliveries f with Not_found -> [])
      in
      let ref_ = Simnet.deliveries sim ~flow:f in
      if real <> ref_ then
        QCheck.Test.fail_reportf
          "flow %d: delivery instants diverge (real %d pkts, oracle %d pkts)@.real:   %s@.oracle: %s"
          f (List.length real) (List.length ref_)
          (String.concat " " (List.map (Printf.sprintf "%.9f") real))
          (String.concat " " (List.map (Printf.sprintf "%.9f") ref_)))
    flows;
  (* compare: drop accounting *)
  let real_drops = List.sort compare (Net.drops_by_reason net) in
  let ref_drops = Simnet.drops_by_reason sim in
  if real_drops <> ref_drops then
    QCheck.Test.fail_reportf "drop counts diverge@.real:   %s@.oracle: %s"
      (String.concat ", " (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) real_drops))
      (String.concat ", " (List.map (fun (r, n) -> Printf.sprintf "%s=%d" r n) ref_drops));
  (* compare: per-directed-link transmit counts *)
  Array.iter
    (fun (l : T.link) ->
      List.iter
        (fun (from_, to_) ->
          let real = Net.link_tx_packets net ~from_ ~to_ in
          let ref_ = Simnet.link_tx sim ~from_ ~to_ in
          if real <> ref_ then
            QCheck.Test.fail_reportf "link %d->%d: real tx %d, oracle tx %d" from_ to_ real
              ref_)
        [ (l.T.a, l.T.b); (l.T.b, l.T.a) ])
    links;
  true

let prop_delivery =
  QCheck.Test.make ~name:"random scenarios deliver identically on both stacks" ~count:200
    ~long_factor:5
    QCheck.(int_bound 1_000_000)
    delivery_scenario

(* ---------------- mode-protocol differential ---------------- *)

(* Scenario A — lossless network, commands spaced far beyond every dwell:
   the distributed flood must land exactly on the declarative fold. *)
let prop_modes_lossless =
  QCheck.Test.make ~name:"protocol matches the declarative mode fold (lossless)" ~count:40
    ~long_factor:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 5) in
      let topo, sws, _hosts = random_topology ~uniform:true rng in
      let n_sw = Array.length sws in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let region_ttl = 1 + Prng.int rng n_sw in
      let p =
        Protocol.create net ~region_ttl ~min_dwell:0.3 ~flap_window:30. ~max_holddown:1.2
          ~anti_entropy:0.15 ~seed:7
          ~modes_for:(fun _ -> [ "reroute" ])
          ()
      in
      let attacks = [| Packet.Lfa; Packet.Volumetric |] in
      let n_cmds = 2 + Prng.int rng 5 in
      let cmds =
        List.init n_cmds (fun _ ->
            {
              Oracle.Modes.c_origin = sws.(Prng.int rng n_sw);
              c_attack = Prng.choose rng attacks;
              c_activate = Prng.bool rng;
            })
      in
      (* 3 s spacing: far beyond min_dwell (0.3 s) and the saturated
         holddown (1.2 s), so every command lands on a settled network *)
      List.iteri
        (fun i (c : _ Oracle.Modes.cmd) ->
          Engine.schedule engine
            ~at:(0.5 +. (3.0 *. float_of_int i))
            (fun () ->
              if c.Oracle.Modes.c_activate then Protocol.raise_alarm p ~sw:c.c_origin c.c_attack
              else Protocol.clear_alarm p ~sw:c.c_origin c.c_attack))
        cmds;
      Engine.run engine ~until:(0.5 +. (3.0 *. float_of_int n_cmds) +. 3.0);
      let dist ~origin ~sw = Oracle.Routing.switch_distance topo ~from_:origin ~to_:sw in
      let verdicts =
        Oracle.Modes.predict ~switches:(Array.to_list sws) ~dist ~region_ttl cmds
      in
      List.iter
        (fun (v : _ Oracle.Modes.verdict) ->
          let got = Protocol.epoch p v.Oracle.Modes.v_attack in
          if got <> v.v_epochs then
            QCheck.Test.fail_reportf "%s: protocol issued epoch %d, fold predicts %d"
              (Packet.attack_kind_to_string v.v_attack)
              got v.v_epochs;
          List.iter
            (fun (sw, (ep, act)) ->
              let got_ep = Protocol.known_epoch p ~sw ~attack:v.v_attack in
              let got_act = Protocol.attack_active p ~sw v.v_attack in
              if got_ep <> ep || got_act <> act then
                QCheck.Test.fail_reportf
                  "%s at switch %d: protocol (epoch %d, %b), fold predicts (epoch %d, %b)"
                  (Packet.attack_kind_to_string v.v_attack)
                  sw got_ep got_act ep act)
            v.v_states)
        verdicts;
      (* lossless: every advert must have been confirmed by every peer *)
      if Protocol.pending_adverts p <> 0 then
        QCheck.Test.fail_reportf "lossless run left %d adverts pending"
          (Protocol.pending_adverts p);
      true)

(* Scenario B — faults (cuts, crashes, an adversarial first-probe-eating
   link), all healed early; anti-entropy must converge the full region,
   and the chaos quiescence checker must come back clean. *)
let prop_modes_healing =
  QCheck.Test.make ~name:"protocol converges through healed faults" ~count:25 ~long_factor:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 9) in
      let topo, sws, _hosts = random_topology rng in
      let n_sw = Array.length sws in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let region_ttl = n_sw + 2 in
      let p =
        Protocol.create net ~region_ttl ~min_dwell:0.1 ~anti_entropy:0.1 ~seed:11
          ~modes_for:(fun _ -> [ "drop" ])
          ()
      in
      let harness = Chaos.create ~seed:(seed + 13) net in
      Chaos.watch harness;
      (* distinct attacks, one raise each, at random origins *)
      let kinds = [| Packet.Lfa; Packet.Volumetric; Packet.Pulsing |] in
      let n_attacks = 1 + Prng.int rng 3 in
      let origins =
        List.init n_attacks (fun i -> (kinds.(i), sws.(Prng.int rng n_sw)))
      in
      let is_origin sw = List.exists (fun (_, o) -> o = sw) origins in
      (* faults: active while the raises flood, all healed by t = 1.5 *)
      let sw_links =
        T.links topo
        |> List.filter (fun (l : T.link) ->
               (T.node topo l.T.a).T.kind = T.Switch && (T.node topo l.T.b).T.kind = T.Switch)
        |> Array.of_list
      in
      for _ = 1 to 1 + Prng.int rng 3 do
        let t0 = 0.2 +. Prng.float rng 0.6 in
        let t1 = 1.2 +. Prng.float rng 0.3 in
        match Prng.int rng 3 with
        | 0 ->
          let l = Prng.choose rng sw_links in
          Chaos.at harness ~time:t0 (Chaos.Link_down (l.T.a, l.T.b));
          Chaos.at harness ~time:t1 (Chaos.Link_up (l.T.a, l.T.b))
        | 1 ->
          let candidates = Array.to_list sws |> List.filter (fun sw -> not (is_origin sw)) in
          (match candidates with
          | [] ->
            let l = Prng.choose rng sw_links in
            Chaos.at harness ~time:t0 (Chaos.Link_down (l.T.a, l.T.b));
            Chaos.at harness ~time:t1 (Chaos.Link_up (l.T.a, l.T.b))
          | l ->
            let sw = List.nth l (Prng.int rng (List.length l)) in
            Chaos.at harness ~time:t0 (Chaos.Switch_down sw);
            Chaos.at harness ~time:t1 (Chaos.Switch_up sw))
        | _ ->
          let l = Prng.choose rng sw_links in
          Chaos.drop_first_probe_per_epoch harness ~a:l.T.a ~b:l.T.b
      done;
      List.iter
        (fun (attack, origin) ->
          Engine.schedule engine
            ~at:(0.4 +. Prng.float rng 0.6)
            (fun () -> Protocol.raise_alarm p ~sw:origin attack))
        origins;
      Engine.run engine ~until:9.5;
      (* convergence: the region covers the whole graph, so every switch
         must have applied epoch 1 of every attack *)
      List.iter
        (fun (attack, _origin) ->
          if Protocol.epoch p attack <> 1 then
            QCheck.Test.fail_reportf "%s: expected a single epoch, protocol issued %d"
              (Packet.attack_kind_to_string attack)
              (Protocol.epoch p attack);
          Array.iter
            (fun sw ->
              if Protocol.known_epoch p ~sw ~attack <> 1 then
                QCheck.Test.fail_reportf "%s: switch %d never converged (known epoch %d)"
                  (Packet.attack_kind_to_string attack)
                  sw
                  (Protocol.known_epoch p ~sw ~attack);
              if not (Protocol.attack_active p ~sw attack) then
                QCheck.Test.fail_reportf "%s: switch %d heard the epoch but is not active"
                  (Packet.attack_kind_to_string attack)
                  sw)
            sws)
        origins;
      match Chaos.check_quiescence harness ~protocol:p ~origins () with
      | [] -> true
      | violations ->
        QCheck.Test.fail_reportf "quiescence violations after healing:@.%s"
          (String.concat "\n" violations))

(* ---------------- sharded-engine differential ---------------- *)

module Psim = Ff_parallel.Psim
module Workload = Ff_parallel.Workload

(* The parallel-engine property: one CBR scenario on a random topology,
   run once on a plain sequential engine and then sharded 1, 2 and ~4
   ways — 2 shards on real domains (the determinism check doubles as the
   race detector: OCaml has no TSan, but a racy counter or heap cannot
   stay bit-identical across interleavings for long), the others through
   the cooperative fallback. Every configuration must reproduce the
   sequential run exactly: per-flow delivery counts and delivery-time
   checksums, total event count, sorted drop reasons, and per-directed-
   link transmit counters. *)
let sharded_scenario seed =
  let rng = Prng.create ~seed:(seed + 7) in
  let topo, sws, _hosts = random_topology rng in
  let n_sw = Array.length sws in
  let rate_pps = 400. +. (float_of_int (Prng.int rng 3) *. 300.) in
  let w = Workload.make ~rate_pps ~duration:0.3 topo in
  let ref_counters, ref_net = Workload.run_reference w in
  let ref_events = Engine.steps (Net.engine ref_net) in
  let ref_drops = Net.drops_by_reason ref_net in
  let links = T.links topo in
  let check label (r : Psim.result) (c : Workload.counters) =
    Array.iteri
      (fun slot n ->
        if c.Workload.delivered.(slot) <> n then
          QCheck.Test.fail_reportf "%s: flow slot %d delivered %d packets, sequential %d"
            label slot c.Workload.delivered.(slot) n;
        if c.Workload.time_sum.(slot) <> ref_counters.Workload.time_sum.(slot) then
          QCheck.Test.fail_reportf
            "%s: flow slot %d delivery-time checksum %.17g, sequential %.17g" label slot
            c.Workload.time_sum.(slot)
            ref_counters.Workload.time_sum.(slot))
      ref_counters.Workload.delivered;
    if r.Psim.events <> ref_events then
      QCheck.Test.fail_reportf "%s: %d events across shards, sequential %d" label
        r.Psim.events ref_events;
    let drops = Psim.drops_by_reason r in
    if drops <> ref_drops then
      QCheck.Test.fail_reportf "%s: drop counts diverge@.sharded:    %s@.sequential: %s"
        label
        (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) drops))
        (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) ref_drops));
    List.iter
      (fun (l : T.link) ->
        List.iter
          (fun (from_, to_) ->
            let sharded = Psim.link_tx_packets r ~from_ ~to_ in
            let ref_tx = Net.link_tx_packets ref_net ~from_ ~to_ in
            if sharded <> ref_tx then
              QCheck.Test.fail_reportf "%s: link %d->%d tx %d, sequential %d" label from_
                to_ sharded ref_tx)
          [ (l.T.a, l.T.b); (l.T.b, l.T.a) ])
      links
  in
  List.iter
    (fun (shards, mode, label) ->
      let c = Workload.fresh_counters w in
      let r =
        Psim.run ~mode ~shards ~topo ~setup:(Workload.setup w c)
          ~until:(Workload.until w) ()
      in
      check label r c)
    [
      (1, Psim.Sequential, "1 shard");
      (2, Psim.Domains, "2 shards (domains)");
      (min 4 n_sw, Psim.Sequential, "4 shards (cooperative)");
    ];
  true

let prop_sharded =
  QCheck.Test.make
    ~name:"sharded runs (1/2/4) match the sequential engine bit for bit" ~count:40
    ~long_factor:3
    QCheck.(int_bound 1_000_000)
    sharded_scenario

let () =
  Alcotest.run "ff_differential"
    [
      ("event order", [ Test_seed.to_alcotest prop_event_order ]);
      ("routing", [ Test_seed.to_alcotest prop_live_routing ]);
      ("delivery", [ Test_seed.to_alcotest prop_delivery ]);
      ( "modes",
        [ Test_seed.to_alcotest prop_modes_lossless; Test_seed.to_alcotest prop_modes_healing ]
      );
      ("sharded", [ Test_seed.to_alcotest prop_sharded ]);
    ]
