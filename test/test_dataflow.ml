(* Tests for Ff_dataflow: rename-invariant equivalence and graph merging. *)

module Ppm = Ff_dataplane.Ppm
module Resource = Ff_dataplane.Resource
module Equiv = Ff_dataflow.Equiv
module Graph = Ff_dataflow.Graph
module Specs = Ff_boosters.Specs

let spec ?(role = Ppm.Detection) ?(booster = "b") ?(resources = Resource.zero) name body =
  Ppm.make_spec ~name ~booster ~role ~resources body

let counter_body ~reg ~meta =
  [
    Ppm.Set_meta (meta, Ppm.Reg_read (reg, Ppm.Hash [ "src"; "dst" ]));
    Ppm.Reg_write (reg, Ppm.Hash [ "src"; "dst" ],
       Ppm.Binop (Ppm.Add, Ppm.Meta meta, Ppm.Field "size"));
  ]

(* ---------------- Equivalence ---------------- *)

let test_equiv_reflexive () =
  let a = spec "a" (counter_body ~reg:"r" ~meta:"m") in
  Alcotest.(check bool) "reflexive" true (Equiv.equivalent a a)

let test_equiv_rename_invariant () =
  let a = spec "a" (counter_body ~reg:"flow_bytes" ~meta:"tmp") in
  let b = spec "b" (counter_body ~reg:"tenant_counter" ~meta:"scratch") in
  Alcotest.(check bool) "renamed registers and metas equivalent" true (Equiv.equivalent a b);
  Alcotest.(check string) "canonical forms equal" (Equiv.canonical a) (Equiv.canonical b);
  Alcotest.(check int) "signatures equal" (Equiv.signature a) (Equiv.signature b)

let test_equiv_hash_field_order () =
  let a = spec "a" [ Ppm.Set_meta ("m", Ppm.Hash [ "src"; "dst"; "proto" ]) ] in
  let b = spec "b" [ Ppm.Set_meta ("m", Ppm.Hash [ "proto"; "src"; "dst" ]) ] in
  Alcotest.(check bool) "hash field order irrelevant" true (Equiv.equivalent a b)

let test_equiv_commutative_operands () =
  let a = spec "a" [ Ppm.Set_meta ("m", Ppm.Binop (Ppm.Add, Ppm.Field "x", Ppm.Field "y")) ] in
  let b = spec "b" [ Ppm.Set_meta ("m", Ppm.Binop (Ppm.Add, Ppm.Field "y", Ppm.Field "x")) ] in
  Alcotest.(check bool) "a+b = b+a" true (Equiv.equivalent a b);
  let c = spec "c" [ Ppm.Set_meta ("m", Ppm.Binop (Ppm.Sub, Ppm.Field "x", Ppm.Field "y")) ] in
  let d = spec "d" [ Ppm.Set_meta ("m", Ppm.Binop (Ppm.Sub, Ppm.Field "y", Ppm.Field "x")) ] in
  Alcotest.(check bool) "a-b <> b-a" false (Equiv.equivalent c d)

let test_equiv_comparison_normalisation () =
  let a = spec "a" [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Field "x", Ppm.Field "y")) ] in
  let b = spec "b" [ Ppm.Drop_when (Ppm.Cmp (Ppm.Lt, Ppm.Field "y", Ppm.Field "x")) ] in
  Alcotest.(check bool) "x>y = y<x" true (Equiv.equivalent a b)

let test_equiv_role_matters () =
  let a = spec ~role:Ppm.Detection "a" (counter_body ~reg:"r" ~meta:"m") in
  let b = spec ~role:Ppm.Mitigation "b" (counter_body ~reg:"r" ~meta:"m") in
  Alcotest.(check bool) "different roles not shareable" false (Equiv.equivalent a b)

let test_equiv_structure_matters () =
  let a = spec "a" [ Ppm.Set_meta ("m", Ppm.Const 1.) ] in
  let b = spec "b" [ Ppm.Set_meta ("m", Ppm.Const 2.) ] in
  Alcotest.(check bool) "different constants differ" false (Equiv.equivalent a b)

let test_equiv_distinct_vars_not_conflated () =
  (* writing two different registers is not the same as writing one twice *)
  let a = spec "a" [ Ppm.Reg_write ("r1", Ppm.Const 0., Ppm.Const 1.);
                     Ppm.Reg_write ("r1", Ppm.Const 1., Ppm.Const 1.) ] in
  let b = spec "b" [ Ppm.Reg_write ("r1", Ppm.Const 0., Ppm.Const 1.);
                     Ppm.Reg_write ("r2", Ppm.Const 1., Ppm.Const 1.) ] in
  Alcotest.(check bool) "register identity preserved" false (Equiv.equivalent a b)

(* ---------------- Graphs ---------------- *)

let test_graph_of_pipeline () =
  let specs = Specs.specs_of "lfa-detector" in
  let g = Graph.of_pipeline ~booster:"lfa-detector" specs in
  Alcotest.(check int) "vertices" (List.length specs) (Graph.num_vertices g);
  Alcotest.(check bool) "has chain edges" true
    (List.length (Graph.edges g) >= List.length specs - 1)

let test_graph_state_edges_weighted () =
  let p1 = spec "w" [ Ppm.Reg_write ("shared", Ppm.Const 0., Ppm.Const 1.) ] in
  let p2 = spec "mid" [ Ppm.Set_meta ("m", Ppm.Const 0.) ] in
  let p3 =
    spec "r"
      [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Reg_read ("shared", Ppm.Const 0.), Ppm.Const 0.)) ]
  in
  let g = Graph.of_pipeline ~booster:"b" [ p1; p2; p3 ] in
  let e = List.find_opt (fun e -> e.Graph.u = 0 && e.Graph.v = 2) (Graph.edges g) in
  match e with
  | Some e -> Alcotest.(check (float 0.)) "weight = shared registers" 1. e.Graph.weight
  | None -> Alcotest.fail "missing long-range state edge"

let test_merge_shares_parser_and_cms () =
  let compiled = Fastflex.Compile.boosters () in
  let absorbed = List.map snd compiled.Fastflex.Compile.sharing in
  Alcotest.(check bool) "at least 8 PPMs absorbed" true (List.length absorbed >= 8);
  let merged_names =
    List.map (fun v -> v.Graph.spec.Ppm.name) (Graph.vertices compiled.Fastflex.Compile.merged)
  in
  Alcotest.(check bool) "cms-update survives" true (List.mem "cms-update" merged_names);
  Alcotest.(check bool) "tenant-count absorbed into cms-update" true
    (List.mem "tenant-count" absorbed);
  let cms =
    List.find
      (fun v -> v.Graph.spec.Ppm.name = "cms-update")
      (Graph.vertices compiled.Fastflex.Compile.merged)
  in
  Alcotest.(check bool) "cms shared by heavy-hitter" true
    (List.mem "heavy-hitter" cms.Graph.boosters);
  Alcotest.(check bool) "cms shared by global-rate-limit" true
    (List.mem "global-rate-limit" cms.Graph.boosters)

let test_merge_savings_positive () =
  let compiled = Fastflex.Compile.boosters () in
  Alcotest.(check bool) "sharing saves stages" true (compiled.Fastflex.Compile.savings > 0.1);
  Alcotest.(check bool) "savings below 1" true (compiled.Fastflex.Compile.savings < 1.)

let test_merge_keeps_distinct_logic () =
  let compiled = Fastflex.Compile.boosters () in
  let merged_names =
    List.map (fun v -> v.Graph.spec.Ppm.name) (Graph.vertices compiled.Fastflex.Compile.merged)
  in
  Alcotest.(check bool) "flow-state kept" true (List.mem "flow-state" merged_names);
  Alcotest.(check bool) "ttl-learn kept" true (List.mem "ttl-learn" merged_names);
  Alcotest.(check bool) "hh-threshold kept" true (List.mem "hh-threshold" merged_names)

let test_merge_resource_max () =
  let a =
    spec ~booster:"x" ~resources:(Resource.make ~stages:2. ~sram_kb:10. ()) "a"
      (counter_body ~reg:"r" ~meta:"m")
  in
  let b =
    spec ~booster:"y" ~resources:(Resource.make ~stages:1. ~sram_kb:90. ()) "b"
      (counter_body ~reg:"q" ~meta:"n")
  in
  let ga = Graph.of_pipeline ~booster:"x" [ a ] in
  let gb = Graph.of_pipeline ~booster:"y" [ b ] in
  let merged, report = Graph.merge [ ga; gb ] in
  Alcotest.(check int) "single vertex" 1 (Graph.num_vertices merged);
  Alcotest.(check int) "one absorption" 1 (List.length report);
  let v = Graph.vertex merged 0 in
  Alcotest.(check (float 0.)) "max stages" 2. v.Graph.spec.Ppm.resources.Resource.stages;
  Alcotest.(check (float 0.)) "max sram" 90. v.Graph.spec.Ppm.resources.Resource.sram_kb

let test_clusters () =
  let p1 = spec "w" [ Ppm.Reg_write ("shared", Ppm.Const 0., Ppm.Const 1.) ] in
  let p2 =
    spec "r"
      [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Reg_read ("shared", Ppm.Const 0.), Ppm.Const 0.)) ]
  in
  let p3 = spec "lonely" [ Ppm.Set_meta ("m", Ppm.Const 0.) ] in
  let g = Graph.of_pipeline ~booster:"b" [ p1; p2; p3 ] in
  let clusters = Graph.clusters ~threshold:1. g in
  Alcotest.(check bool) "w,r together" true
    (List.exists (fun c -> List.mem 0 c && List.mem 1 c) clusters);
  Alcotest.(check bool) "lonely alone" true (List.mem [ 2 ] clusters)

(* ---------------- Decomposition ---------------- *)

module Decompose = Ff_dataflow.Decompose

let flat_program =
  [
    (* parser-ish prologue *)
    Ppm.Set_meta ("key", Ppm.Hash [ "src"; "dst" ]);
    (* counter cluster on register a *)
    Ppm.Reg_write ("a", Ppm.Meta "key", Ppm.Binop (Ppm.Add, Ppm.Reg_read ("a", Ppm.Meta "key"), Ppm.Const 1.));
    Ppm.Set_meta ("count", Ppm.Reg_read ("a", Ppm.Meta "key"));
    (* independent cluster on register b *)
    Ppm.Reg_write ("b", Ppm.Const 0., Ppm.Field "size");
    Ppm.Reg_write ("b", Ppm.Const 1., Ppm.Field "ttl");
    (* mitigation tail *)
    Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Meta "count", Ppm.Const 100.));
  ]

let test_decompose_order_preserved () =
  let ppms = Decompose.decompose ~booster:"x" flat_program in
  Alcotest.(check bool) "multiple ppms" true (List.length ppms >= 2);
  Alcotest.(check bool) "concatenation is the original program" true
    (Decompose.roundtrip ppms = flat_program)

let test_decompose_state_affinity () =
  let ppms = Decompose.decompose ~booster:"x" flat_program in
  (* the two writes to register b must share one PPM *)
  let owner stmt =
    List.find_opt (fun p -> List.mem stmt p.Ppm.body) ppms
  in
  let b0 = Ppm.Reg_write ("b", Ppm.Const 0., Ppm.Field "size") in
  let b1 = Ppm.Reg_write ("b", Ppm.Const 1., Ppm.Field "ttl") in
  (match (owner b0, owner b1) with
  | Some p0, Some p1 ->
    Alcotest.(check string) "b-cluster co-located" p0.Ppm.name p1.Ppm.name
  | _ -> Alcotest.fail "statements lost");
  (* a-cluster and b-cluster are split *)
  let a0 =
    Ppm.Reg_write ("a", Ppm.Meta "key",
       Ppm.Binop (Ppm.Add, Ppm.Reg_read ("a", Ppm.Meta "key"), Ppm.Const 1.))
  in
  match (owner a0, owner b0) with
  | Some pa, Some pb ->
    Alcotest.(check bool) "disjoint state split" true (pa.Ppm.name <> pb.Ppm.name)
  | _ -> Alcotest.fail "statements lost"

let test_decompose_roles () =
  let ppms = Decompose.decompose ~booster:"x" flat_program in
  let last = List.nth ppms (List.length ppms - 1) in
  Alcotest.(check bool) "dropping PPM is mitigation" true (last.Ppm.role = Ppm.Mitigation)

let test_estimate_resources_monotone () =
  let small = Decompose.estimate_resources [ List.hd flat_program ] in
  let big = Decompose.estimate_resources flat_program in
  Alcotest.(check bool) "more statements, more stages" true
    (big.Resource.stages >= small.Resource.stages);
  Alcotest.(check bool) "registers counted" true (big.Resource.sram_kb >= 128.)

let prop_decompose_roundtrip =
  QCheck.Test.make ~name:"decomposition always preserves program order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 4))
    (fun choices ->
      let stmt_of i =
        match i with
        | 0 -> Ppm.Set_meta ("m", Ppm.Field "size")
        | 1 -> Ppm.Reg_write ("r1", Ppm.Const 0., Ppm.Field "size")
        | 2 -> Ppm.Reg_write ("r2", Ppm.Const 0., Ppm.Field "ttl")
        | 3 -> Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Field "size", Ppm.Const 100.))
        | _ -> Ppm.Emit_probe "p"
      in
      let program = List.map stmt_of choices in
      Decompose.roundtrip (Decompose.decompose ~booster:"q" program) = program)

(* ---------------- Static checking ---------------- *)

module Check = Ff_dataflow.Check

let test_check_catalogue_clean () =
  List.iter
    (fun (name, specs) ->
      let issues = Check.check_pipeline specs in
      Alcotest.(check int) (name ^ " has no issues") 0 (List.length issues))
    (Specs.all ())

let roomy = Resource.make ~stages:8. ()

let test_check_uninitialized_meta () =
  let bad =
    spec ~resources:roomy "bad"
      [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Meta "ghost", Ppm.Const 0.)) ]
  in
  match Check.check_pipeline [ bad ] with
  | [ Check.Uninitialized_meta { meta = "ghost"; _ } ] -> ()
  | issues -> Alcotest.fail (Printf.sprintf "expected 1 issue, got %d" (List.length issues))

let test_check_meta_defined_upstream () =
  let producer = spec ~resources:roomy "producer" [ Ppm.Set_meta ("k", Ppm.Field "size") ] in
  let consumer =
    spec ~resources:roomy "consumer"
      [ Ppm.Drop_when (Ppm.Cmp (Ppm.Gt, Ppm.Meta "k", Ppm.Const 0.)) ]
  in
  Alcotest.(check int) "cross-PPM definition accepted" 0
    (List.length (Check.check_pipeline [ producer; consumer ]))

let test_check_undeclared_table () =
  let bad = spec ~resources:roomy "bad" [ Ppm.Apply_table "mystery" ] in
  match Check.check_pipeline [ bad ] with
  | [ Check.Undeclared_table { table = "mystery"; _ } ] -> ()
  | _ -> Alcotest.fail "undeclared table not flagged"

let test_check_table_outputs () =
  let ok =
    spec ~resources:roomy "ok"
      [ Ppm.Apply_table "acl_policy";
        Ppm.Drop_when (Ppm.Cmp (Ppm.Eq, Ppm.Meta "acl_deny", Ppm.Const 1.)) ]
  in
  Alcotest.(check int) "table output counts as defined" 0
    (List.length (Check.check_pipeline [ ok ]))

let test_check_unreachable_after_drop () =
  let bad =
    spec ~resources:roomy "bad" [ Ppm.Drop_when Ppm.True; Ppm.Set_meta ("m", Ppm.Const 1.) ]
  in
  Alcotest.(check bool) "dead code flagged" true
    (List.exists
       (function Check.Unreachable_after_drop _ -> true | _ -> false)
       (Check.check_pipeline [ bad ]))

let test_check_under_provisioned () =
  (* ten statements but zero declared stages *)
  let body = List.init 10 (fun i -> Ppm.Set_meta (Printf.sprintf "m%d" i, Ppm.Const 0.)) in
  let bad = spec ~resources:Resource.zero "bad" body in
  Alcotest.(check bool) "under-provisioning flagged" true
    (List.exists
       (function Check.Under_provisioned _ -> true | _ -> false)
       (Check.check_pipeline [ bad ]))

let test_check_probe_from_parser () =
  let bad = spec ~role:Ppm.Parser ~resources:roomy "bad" [ Ppm.Emit_probe "x" ] in
  Alcotest.(check bool) "parser probe flagged" true
    (List.exists
       (function Check.Probe_from_parser _ -> true | _ -> false)
       (Check.check_pipeline [ bad ]))

let prop_canonical_stable_under_renaming =
  QCheck.Test.make ~name:"canonicalization invariant under register renaming" ~count:100
    QCheck.(pair small_string small_string)
    (fun (r1, r2) ->
      QCheck.assume (r1 <> "" && r2 <> "");
      let a = spec "a" (counter_body ~reg:("reg_" ^ r1) ~meta:"m") in
      let b = spec "b" (counter_body ~reg:("reg_" ^ r2) ~meta:"m") in
      Equiv.canonical a = Equiv.canonical b)

let () =
  let qcheck =
    List.map Test_seed.to_alcotest
      [ prop_canonical_stable_under_renaming; prop_decompose_roundtrip ]
  in
  Alcotest.run "ff_dataflow"
    [
      ( "equivalence",
        [
          Alcotest.test_case "reflexive" `Quick test_equiv_reflexive;
          Alcotest.test_case "rename invariant" `Quick test_equiv_rename_invariant;
          Alcotest.test_case "hash field order" `Quick test_equiv_hash_field_order;
          Alcotest.test_case "commutativity" `Quick test_equiv_commutative_operands;
          Alcotest.test_case "comparison normalisation" `Quick
            test_equiv_comparison_normalisation;
          Alcotest.test_case "role matters" `Quick test_equiv_role_matters;
          Alcotest.test_case "structure matters" `Quick test_equiv_structure_matters;
          Alcotest.test_case "distinct vars kept" `Quick test_equiv_distinct_vars_not_conflated;
        ] );
      ( "graph",
        [
          Alcotest.test_case "of_pipeline" `Quick test_graph_of_pipeline;
          Alcotest.test_case "state edges weighted" `Quick test_graph_state_edges_weighted;
          Alcotest.test_case "clusters" `Quick test_clusters;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "order preserved" `Quick test_decompose_order_preserved;
          Alcotest.test_case "state affinity" `Quick test_decompose_state_affinity;
          Alcotest.test_case "roles" `Quick test_decompose_roles;
          Alcotest.test_case "resource estimate monotone" `Quick
            test_estimate_resources_monotone;
        ] );
      ( "check",
        [
          Alcotest.test_case "catalogue clean" `Quick test_check_catalogue_clean;
          Alcotest.test_case "uninitialized meta" `Quick test_check_uninitialized_meta;
          Alcotest.test_case "meta defined upstream" `Quick test_check_meta_defined_upstream;
          Alcotest.test_case "undeclared table" `Quick test_check_undeclared_table;
          Alcotest.test_case "table outputs" `Quick test_check_table_outputs;
          Alcotest.test_case "unreachable after drop" `Quick test_check_unreachable_after_drop;
          Alcotest.test_case "under provisioned" `Quick test_check_under_provisioned;
          Alcotest.test_case "probe from parser" `Quick test_check_probe_from_parser;
        ] );
      ( "merge",
        [
          Alcotest.test_case "shares parser and cms" `Quick test_merge_shares_parser_and_cms;
          Alcotest.test_case "savings positive" `Quick test_merge_savings_positive;
          Alcotest.test_case "distinct logic kept" `Quick test_merge_keeps_distinct_logic;
          Alcotest.test_case "resource max on merge" `Quick test_merge_resource_max;
        ] );
      ("properties", qcheck);
    ]
