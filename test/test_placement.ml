(* Tests for Ff_placement: vector bin packing and on-path placement. *)

module T = Ff_topology.Topology
module Resource = Ff_dataplane.Resource
module Ppm = Ff_dataplane.Ppm
module Graph = Ff_dataflow.Graph
module Pack = Ff_placement.Pack
module Placement = Ff_placement.Placement
module TM = Ff_te.Traffic_matrix

let ppm ?(role = Ppm.Detection) name stages sram =
  Ppm.make_spec ~name ~booster:"b" ~role
    ~resources:(Resource.make ~stages ~sram_kb:sram ())
    [ Ppm.Set_meta (name, Ppm.Const 1.) ]

let graph_of specs = Graph.of_pipeline ~booster:"b" specs

let test_ffd_packs_within_capacity () =
  let g = graph_of [ ppm "a" 4. 100.; ppm "b" 4. 100.; ppm "c" 4. 100.; ppm "d" 4. 100. ] in
  let cap = Resource.make ~stages:8. ~sram_kb:1000. ~alus:100. ~tcam:100. ~hash_units:10. () in
  match Pack.first_fit_decreasing ~capacities:[ (0, cap); (1, cap) ] g with
  | Ok bins ->
    Alcotest.(check bool) "capacity respected" true (Pack.respects_capacity bins);
    Alcotest.(check int) "both switches used" 2 (Pack.bins_used bins);
    (* all four items placed *)
    let placed = List.concat_map (fun b -> b.Pack.items) bins in
    Alcotest.(check int) "all placed" 4 (List.length placed)
  | Error e -> Alcotest.fail e

let test_ffd_reports_infeasible () =
  let g = graph_of [ ppm "huge" 100. 10. ] in
  let cap = Resource.make ~stages:8. ~sram_kb:1000. () in
  match Pack.first_fit_decreasing ~capacities:[ (0, cap) ] g with
  | Ok _ -> Alcotest.fail "should not fit"
  | Error msg -> Alcotest.(check bool) "names the PPM" true (String.length msg > 0)

let test_ffd_affinity_colocates () =
  (* two PPMs sharing state should land on the same switch when both fit *)
  let writer =
    Ppm.make_spec ~name:"w" ~booster:"b" ~role:Ppm.Detection
      ~resources:(Resource.make ~stages:1. ())
      [ Ppm.Reg_write ("shared", Ppm.Const 0., Ppm.Const 1.) ]
  in
  let reader =
    Ppm.make_spec ~name:"r" ~booster:"b" ~role:Ppm.Detection
      ~resources:(Resource.make ~stages:1. ())
      [ Ppm.Set_meta ("m", Ppm.Reg_read ("shared", Ppm.Const 0.)) ]
  in
  let g = graph_of [ writer; reader ] in
  let cap = Resource.make ~stages:4. ~sram_kb:10. ~alus:10. ~tcam:10. ~hash_units:10. () in
  match Pack.first_fit_decreasing ~capacities:[ (0, cap); (1, cap) ] g with
  | Ok bins ->
    Alcotest.(check (float 0.)) "all shared state co-located" 1. (Pack.colocation_score g bins)
  | Error e -> Alcotest.fail e

let test_sharing_reduces_bins () =
  (* the headline packing claim: merged graphs need fewer switches *)
  let compiled = Fastflex.Compile.boosters () in
  let small_cap = Resource.make ~stages:8. ~sram_kb:1024. ~tcam:512. ~alus:16. ~hash_units:4. () in
  let switches = List.init 12 Fun.id in
  let capacities = List.map (fun sw -> (sw, small_cap)) switches in
  let unmerged_graphs = List.map snd compiled.Fastflex.Compile.graphs in
  let count_bins g =
    match Pack.first_fit_decreasing ~capacities g with
    | Ok bins -> Pack.bins_used bins
    | Error _ -> max_int
  in
  (* pack each booster's graph cumulatively (no sharing): total switch use
     is the sum of per-graph needs under a naive one-graph-at-a-time policy *)
  let merged_bins = count_bins compiled.Fastflex.Compile.merged in
  let unmerged_total =
    List.fold_left (fun acc g -> acc + count_bins g) 0 unmerged_graphs
  in
  Alcotest.(check bool) "merged uses fewer switch slots" true (merged_bins < unmerged_total);
  Alcotest.(check bool) "merged fits the pool" true (merged_bins <= 12)

let fig2_paths lm =
  let topo = lm.T.Fig2.topo in
  List.filter_map
    (fun src -> T.shortest_path topo ~src ~dst:lm.T.Fig2.victim)
    (lm.T.Fig2.normal_sources @ lm.T.Fig2.bot_sources)

let test_place_covers_paths () =
  let lm = T.Fig2.build () in
  let paths = fig2_paths lm in
  let compiled = Fastflex.Compile.boosters ~names:[ "lfa-detector"; "dropper" ] () in
  let capacities =
    List.map
      (fun (n : T.node) -> (n.T.id, Resource.tofino_like))
      (T.switches lm.T.Fig2.topo)
  in
  let plan = Placement.place lm.T.Fig2.topo ~paths ~capacities compiled.Fastflex.Compile.merged in
  Alcotest.(check (float 0.)) "every path watched" 1. plan.Placement.path_coverage;
  Alcotest.(check bool) "detectors exist" true (plan.Placement.detectors <> []);
  Alcotest.(check bool) "mitigators exist" true (plan.Placement.mitigators <> []);
  Alcotest.(check (float 0.)) "mitigation co-located with detection" 0.
    plan.Placement.avg_mitigation_distance

let test_place_falls_downstream_when_tight () =
  let lm = T.Fig2.build () in
  let paths = fig2_paths lm in
  let compiled = Fastflex.Compile.boosters ~names:[ "lfa-detector"; "dropper" ] () in
  (* capacity fits detection but not detection+mitigation on one switch *)
  let detection_need =
    Resource.sum
      (List.map
         (fun v -> v.Graph.spec.Ppm.resources)
         (List.filter
            (fun v -> v.Graph.spec.Ppm.role = Ppm.Detection)
            (Graph.vertices compiled.Fastflex.Compile.merged)))
  in
  let tight = Resource.add detection_need (Resource.make ~stages:1. ~sram_kb:8. ()) in
  let capacities =
    List.map (fun (n : T.node) -> (n.T.id, tight)) (T.switches lm.T.Fig2.topo)
  in
  let plan = Placement.place lm.T.Fig2.topo ~paths ~capacities compiled.Fastflex.Compile.merged in
  Alcotest.(check bool) "coverage still positive" true (plan.Placement.path_coverage > 0.)

let test_popular_switches_ranking () =
  let lm = T.Fig2.build () in
  let paths = fig2_paths lm in
  match Placement.popular_switches lm.T.Fig2.topo ~paths with
  | (top, count) :: _ ->
    (* agg or vagg carries every source-victim path *)
    let name = (T.node lm.T.Fig2.topo top).T.name in
    Alcotest.(check bool) "agg-ish switch on top" true (name = "agg" || name = "vagg");
    Alcotest.(check int) "crossed by all paths" (List.length paths) count
  | [] -> Alcotest.fail "no ranking"

let test_middlebox_detour_stretch () =
  let lm = T.Fig2.build () in
  let topo = lm.T.Fig2.topo in
  let m = TM.empty () in
  List.iter
    (fun src -> TM.set m ~src ~dst:lm.T.Fig2.victim 2_000_000.)
    lm.T.Fig2.normal_sources;
  (* middlebox parked off the natural paths: the detour switches *)
  let eval = Placement.middlebox_detour topo m ~sites:lm.T.Fig2.detour in
  Alcotest.(check bool) "detour stretches paths" true (eval.Placement.avg_stretch > 1.0);
  Alcotest.(check bool) "detour still carries the demand" true
    (eval.Placement.max_util_detour > 0.);
  (* a middlebox already on-path costs nothing *)
  let eval2 = Placement.middlebox_detour topo m ~sites:[ lm.T.Fig2.agg ] in
  Alcotest.(check (float 1e-9)) "on-path site has stretch 1" 1. eval2.Placement.avg_stretch

(* ---------------- random-graph properties ---------------- *)

let prop_pack_respects_capacity =
  QCheck.Test.make ~name:"packing never exceeds a switch's resource vector" ~count:100
    ~long_factor:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Ff_util.Prng.create ~seed:(seed + 1) in
      let n_ppms = 1 + Ff_util.Prng.int rng 8 in
      let specs =
        List.init n_ppms (fun i ->
            Ppm.make_spec
              ~name:(Printf.sprintf "p%d" i)
              ~booster:"b" ~role:Ppm.Detection
              ~resources:
                (Resource.make
                   ~stages:(float_of_int (1 + Ff_util.Prng.int rng 4))
                   ~sram_kb:(float_of_int (10 + Ff_util.Prng.int rng 300))
                   ~alus:(float_of_int (Ff_util.Prng.int rng 5))
                   ())
              [ Ppm.Set_meta (Printf.sprintf "m%d" i, Ppm.Const 1.) ])
      in
      let g = graph_of specs in
      let n_sws = 2 + Ff_util.Prng.int rng 5 in
      let capacities =
        List.init n_sws (fun sw ->
            ( sw,
              Resource.make
                ~stages:(float_of_int (4 + Ff_util.Prng.int rng 10))
                ~sram_kb:(float_of_int (100 + Ff_util.Prng.int rng 1000))
                ~alus:(float_of_int (2 + Ff_util.Prng.int rng 12))
                ~tcam:100. ~hash_units:10. () ))
      in
      match Pack.first_fit_decreasing ~capacities g with
      | Error _ -> true (* infeasibility is a legal answer, not a packing *)
      | Ok bins ->
        if not (Pack.respects_capacity bins) then
          QCheck.Test.fail_reportf "a bin exceeds its capacity";
        (* every PPM placed exactly once, only onto declared switches *)
        let placed = List.concat_map (fun b -> b.Pack.items) bins in
        if List.length placed <> n_ppms then
          QCheck.Test.fail_reportf "%d PPMs, %d placements" n_ppms (List.length placed);
        if List.length (List.sort_uniq compare placed) <> n_ppms then
          QCheck.Test.fail_reportf "a PPM was placed twice";
        List.iter
          (fun (b : Pack.bin) ->
            if not (List.mem_assoc b.Pack.sw capacities) then
              QCheck.Test.fail_reportf "bin on undeclared switch %d" b.Pack.sw)
          bins;
        true)

let prop_place_on_path_invariants =
  QCheck.Test.make ~name:"placement keeps mitigation at-or-downstream of detection" ~count:60
    ~long_factor:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Ff_util.Prng.create ~seed:(seed + 2) in
      let n = 4 + Ff_util.Prng.int rng 5 in
      let topo = T.waxman ~n ~seed:(seed + 11) () in
      let hosts = Array.of_list (T.hosts topo) in
      let paths =
        List.init (2 + Ff_util.Prng.int rng 6) (fun _ ->
            let a = Ff_util.Prng.choose rng hosts and b = Ff_util.Prng.choose rng hosts in
            if a.T.id = b.T.id then None else T.shortest_path topo ~src:a.T.id ~dst:b.T.id)
        |> List.filter_map Fun.id
      in
      let compiled = Fastflex.Compile.boosters ~names:[ "lfa-detector"; "dropper" ] () in
      let graph = compiled.Fastflex.Compile.merged in
      (* capacities scaled 5%-105% of a real switch: small ones force the
         downstream fallback, large ones co-locate *)
      let capacities =
        List.map
          (fun (nd : T.node) ->
            ( nd.T.id,
              Resource.scale (0.05 +. (0.1 *. float_of_int (Ff_util.Prng.int rng 11)))
                Resource.tofino_like ))
          (T.switches topo)
      in
      let plan = Placement.place topo ~paths ~capacities graph in
      (* resource safety: everything installed on a switch (detection and
         mitigation together) sums within its declared capacity *)
      let resources_of name =
        match
          List.find_opt (fun v -> v.Graph.spec.Ppm.name = name) (Graph.vertices graph)
        with
        | Some v -> v.Graph.spec.Ppm.resources
        | None -> QCheck.Test.fail_reportf "plan names unknown PPM %s" name
      in
      let installed = Hashtbl.create 16 in
      List.iter
        (fun (sw, names) ->
          let prev = try Hashtbl.find installed sw with Not_found -> [] in
          Hashtbl.replace installed sw (prev @ names))
        (plan.Placement.detectors @ plan.Placement.mitigators);
      Hashtbl.iter
        (fun sw names ->
          let need = Resource.sum (List.map resources_of names) in
          match List.assoc_opt sw capacities with
          | None -> QCheck.Test.fail_reportf "plan uses undeclared switch %d" sw
          | Some within ->
            if not (Resource.fits ~need ~within) then
              QCheck.Test.fail_reportf "switch %d over capacity" sw)
        installed;
      (* on-path invariant: every mitigator sits at a detector switch or
         immediately downstream of one on some demand path *)
      let detector_sws = List.map fst plan.Placement.detectors in
      let directly_downstream m =
        List.exists
          (fun path ->
            let rec scan = function
              | a :: (b :: _ as rest) -> (b = m && List.mem a detector_sws) || scan rest
              | _ -> false
            in
            scan path)
          paths
      in
      List.iter
        (fun (m, _) ->
          if not (List.mem m detector_sws || directly_downstream m) then
            QCheck.Test.fail_reportf "mitigator at %d is neither at nor downstream of a detector"
              m)
        plan.Placement.mitigators;
      true)

let () =
  Alcotest.run "ff_placement"
    [
      ( "packing",
        [
          Alcotest.test_case "packs within capacity" `Quick test_ffd_packs_within_capacity;
          Alcotest.test_case "reports infeasible" `Quick test_ffd_reports_infeasible;
          Alcotest.test_case "affinity co-locates" `Quick test_ffd_affinity_colocates;
          Alcotest.test_case "sharing reduces bins" `Quick test_sharing_reduces_bins;
        ] );
      ( "placement",
        [
          Alcotest.test_case "covers paths" `Quick test_place_covers_paths;
          Alcotest.test_case "tight capacity" `Quick test_place_falls_downstream_when_tight;
          Alcotest.test_case "popular switches" `Quick test_popular_switches_ranking;
          Alcotest.test_case "middlebox detour stretch" `Quick test_middlebox_detour_stretch;
        ] );
      ( "properties",
        List.map Test_seed.to_alcotest
          [ prop_pack_respects_capacity; prop_place_on_path_invariants ] );
    ]
