(* Tests for Ff_chaos: deterministic fault injection, the invariant
   checker, and — most importantly — that the healing layers actually
   survive what the harness throws at them. The CHAOS_SEED environment
   variable (default 1) re-runs every scenario under a different seed;
   the @chaos dune alias sweeps seeds 1-3. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet
module Protocol = Ff_modes.Protocol
module Transfer = Ff_scaling.Transfer
module Repurpose = Ff_scaling.Repurpose
module Loss = Ff_scaling.Loss
module Chaos = Ff_chaos.Chaos

let seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let modes_for = function
  | Packet.Lfa -> [ "reroute"; "obfuscate" ]
  | Packet.Volumetric -> [ "drop" ]
  | Packet.Pulsing -> [ "reroute" ]
  | Packet.Recon -> [ "obfuscate" ]
  | Packet.Synflood -> [ "syn_guard" ]

let entries n = List.init n (fun i -> (Printf.sprintf "reg[%d]" i, float_of_int i))

(* ---------------- schedule generators ---------------- *)

let test_flap_always_ends_up () =
  let topo = T.ring ~n:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create ~seed net in
  Chaos.flap_link h ~a:0 ~b:1 ~start:0.5 ~until:3.0 ~down_dwell:0.4 ~up_dwell:0.3;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "link back up" true (Net.link_is_up net ~a:0 ~b:1);
  let downs, ups =
    List.fold_left
      (fun (d, u) (_, a) ->
        match a with
        | Chaos.Link_down _ -> (d + 1, u)
        | Chaos.Link_up _ -> (d, u + 1)
        | _ -> (d, u))
      (0, 0) (Chaos.log h)
  in
  Alcotest.(check bool) "at least one cycle" true (downs >= 1);
  Alcotest.(check int) "every cut has a heal" downs ups

let test_crash_and_partition () =
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create ~seed net in
  Chaos.crash_switch h ~sw:2 ~at:1.0 ~recover_after:2.0;
  Chaos.partition h ~groups:[ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] ~at:1.0 ~heal_at:4.0;
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "switch down" false (Net.switch_is_up net ~sw:2);
  Alcotest.(check bool) "crossing link cut" false (Net.link_is_up net ~a:2 ~b:3);
  Alcotest.(check bool) "crossing link cut (wrap)" false (Net.link_is_up net ~a:5 ~b:0);
  Alcotest.(check bool) "intra-group link alive" true (Net.link_is_up net ~a:0 ~b:1);
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "switch recovered" true (Net.switch_is_up net ~sw:2);
  Alcotest.(check bool) "partition healed" true (Net.link_is_up net ~a:2 ~b:3);
  Alcotest.(check bool) "partition healed (wrap)" true (Net.link_is_up net ~a:5 ~b:0)

let test_random_flaps_deterministic () =
  let run () =
    let topo = T.ring ~n:8 () in
    let engine = Engine.create () in
    let net = Net.create engine topo in
    let h = Chaos.create ~seed net in
    Chaos.random_link_flaps h ~n:3 ~start:0.5 ~until:4.0 ~mean_down:0.3 ~mean_up:0.5;
    Engine.run engine ~until:8.;
    List.map (fun (t, a) -> (t, Chaos.action_to_string a)) (Chaos.log h)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "some faults injected" true (List.length a >= 2);
  Alcotest.(check (list (pair (float 0.) string))) "same seed, same schedule" a b

(* ---------------- mode convergence under chaos ---------------- *)

let test_convergence_under_probe_loss () =
  (* ring-8, 30% Bernoulli loss on every mode probe at every switch:
     anti-entropy must still converge the full region within 5 s *)
  let topo = T.ring ~n:8 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  List.iteri
    (fun i sw ->
      ignore
        (Loss.install net ~sw ~prob:0.3 ~seed:(seed + (101 * i))
           ~classes:Loss.Mode_probes_only ()))
    (Net.switch_ids net);
  let p = Protocol.create net ~modes_for ~anti_entropy:0.25 ~seed () in
  Protocol.raise_alarm p ~sw:0 Packet.Lfa;
  Engine.run engine ~until:5.;
  List.iter
    (fun sw ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d converged" sw)
        true
        (Protocol.active p ~sw "reroute"))
    (Net.switch_ids net)

let test_cut_vertex_first_probe_loss_converges () =
  (* the acceptance scenario: a linear chain where the middle link eats
     every first-transmission mode probe. Flooding alone can never get
     past it; epoch anti-entropy must, within 5 s sim time. *)
  let topo = T.linear ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let id name = (T.node_by_name topo name).T.id in
  let h = Chaos.create ~seed net in
  Chaos.drop_first_probe_per_epoch h ~a:(id "s2") ~b:(id "s3");
  let p = Protocol.create net ~modes_for ~anti_entropy:0.25 ~seed () in
  Protocol.raise_alarm p ~sw:(id "s0") Packet.Lfa;
  Engine.run engine ~until:5.;
  List.iter
    (fun sw ->
      Alcotest.(check bool)
        (Printf.sprintf "switch %d heard the epoch" sw)
        true
        (Protocol.active p ~sw "reroute"))
    (Net.switch_ids net);
  Alcotest.(check bool) "the repair channel did it" true
    (Protocol.readverts p + Protocol.repairs p > 0);
  let violations =
    Chaos.check_quiescence h ~protocol:p ~origins:[ (Packet.Lfa, id "s0") ] ()
  in
  Alcotest.(check (list string)) "region quiescent" [] violations

let test_flooding_alone_fails_cut_vertex () =
  (* the control: without anti-entropy the far side never hears *)
  let topo = T.linear ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let id name = (T.node_by_name topo name).T.id in
  let h = Chaos.create ~seed net in
  Chaos.drop_first_probe_per_epoch h ~a:(id "s2") ~b:(id "s3");
  let p = Protocol.create net ~modes_for ~anti_entropy:0. ~seed () in
  Protocol.raise_alarm p ~sw:(id "s0") Packet.Lfa;
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "near side heard" true (Protocol.active p ~sw:(id "s1") "reroute");
  Alcotest.(check bool) "far side did not" false (Protocol.active p ~sw:(id "s4") "reroute");
  let violations =
    Chaos.check_quiescence h ~protocol:p ~origins:[ (Packet.Lfa, id "s0") ] ()
  in
  Alcotest.(check bool) "checker names the hole" true (violations <> [])

(* ---------------- transfer under chaos ---------------- *)

let test_transfer_survives_link_flap () =
  (* ring-6: the chunk path s0-s1-s2-s3 loses its middle link mid-stream;
     the per-round live recompute must fail over to s0-s5-s4-s3 *)
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create ~seed net in
  Chaos.watch h;
  let x =
    Transfer.send net ~src_sw:0 ~dst_sw:3 ~entries:(entries 400) ~seed
      ~on_complete:(fun _ -> ())
      ()
  in
  Chaos.flap_link h ~a:1 ~b:2 ~start:0.004 ~until:2.0 ~down_dwell:0.5 ~up_dwell:0.2;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "transfer completed" true (Transfer.complete x);
  Alcotest.(check bool) "failed over at least once" true (Transfer.reroutes x >= 1);
  Alcotest.(check (list string)) "invariants hold"
    []
    (Chaos.check_quiescence h ~transfers:[ x ] ())

let test_transfer_fails_fast_without_path () =
  (* destination crashes for good: the transfer must report failure with
     a reason promptly instead of burning all 10 retry rounds *)
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create ~seed net in
  let failed_at = ref infinity in
  let reason = ref "" in
  let x =
    Transfer.send net ~src_sw:0 ~dst_sw:3 ~entries:(entries 400) ~seed
      ~retransmit_timeout:0.08
      ~on_fail:(fun r ->
        failed_at := Engine.now engine;
        reason := r)
      ~on_complete:(fun _ -> ())
      ()
  in
  Chaos.at h ~time:0.001 (Chaos.Switch_down 3);
  Engine.run engine ~until:30.;
  Alcotest.(check bool) "failed" true (Transfer.failed x);
  Alcotest.(check (option string)) "reason recorded" (Some "destination-down")
    (Transfer.failure_reason x);
  Alcotest.(check string) "on_fail got the reason" "destination-down" !reason;
  (* 3 dead rounds at the 80 ms base timeout: well under a second, far
     from what 10 exponentially backed-off retries would take *)
  Alcotest.(check bool)
    (Printf.sprintf "prompt failure (at %.2fs)" !failed_at)
    true (!failed_at < 2.);
  Alcotest.(check (list string)) "no stuck transfer" []
    (Chaos.check_quiescence h ~transfers:[ x ] ())

let test_transfer_no_static_path () =
  (* both endpoints alive but no route at all: immediate "no-path" *)
  let topo = T.linear ~n:2 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let id name = (T.node_by_name topo name).T.id in
  Net.set_link_up net ~a:(id "s0") ~b:(id "s1") false;
  let x =
    Transfer.send net ~src_sw:(id "s0") ~dst_sw:(id "s1") ~entries:(entries 8)
      ~on_complete:(fun _ -> ())
      ()
  in
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "failed" true (Transfer.failed x);
  Alcotest.(check (option string)) "no-path" (Some "no-path") (Transfer.failure_reason x)

(* ---------------- repurpose under chaos ---------------- *)

let test_repurpose_aborts_on_crashed_destination () =
  (* the state_to switch crashes while the outbound snapshot transfer is
     in flight: repurposing must abort, leave the switch up and
     unreconfigured, and roll the backup routes back *)
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  List.iter
    (fun (sw : T.node) ->
      List.iter
        (fun (other : T.node) ->
          if sw.T.id <> other.T.id then
            match T.shortest_path topo ~src:sw.T.id ~dst:other.T.id with
            | Some p -> Net.install_path net ~dst:other.T.id p
            | None -> ())
        (T.switches topo))
    (T.switches topo);
  let h = Chaos.create ~seed net in
  let installed = ref false in
  let done_called = ref false in
  let abort_reason = ref "" in
  Engine.schedule engine ~at:0.5 (fun () ->
      Repurpose.repurpose net ~sw:1 ~downtime:1.0 ~state_to:4
        ~snapshot:(fun () -> entries 400)
        ~on_abort:(fun r -> abort_reason := r)
        ~install:(fun () -> installed := true)
        ~on_done:(fun _ -> done_called := true)
        ());
  Chaos.at h ~time:0.501 (Chaos.Switch_down 4);
  Engine.run engine ~until:20.;
  Alcotest.(check bool) "aborted" true (!abort_reason <> "");
  Alcotest.(check bool) "install never ran" false !installed;
  Alcotest.(check bool) "on_done never fired" false !done_called;
  Alcotest.(check bool) "switch stayed up" true (Net.switch_is_up net ~sw:1);
  (* the step-(1) backup routes were rolled back *)
  List.iter
    (fun (n : T.node) ->
      Alcotest.(check int)
        (Printf.sprintf "no backup routes left at %d" n.T.id)
        0 (Net.switch net n.T.id).Net.backup_count)
    (T.switches topo)

(* ---------------- invariants ---------------- *)

let test_packet_conservation_under_faults () =
  (* CBR traffic across a flapping ring: every transmitted packet must be
     accounted for as an arrival, a delivery, or a down-switch drop *)
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let h = Chaos.create ~seed net in
  Chaos.watch h;
  let src = (List.hd hosts).T.id and dst = (List.nth hosts 3).T.id in
  ignore (Ff_netsim.Flow.Cbr.start net ~src ~dst ~rate_pps:300. ~stop:8. ());
  Chaos.flap_link h ~a:1 ~b:2 ~start:1.0 ~until:6.0 ~down_dwell:0.5 ~up_dwell:0.5;
  Chaos.crash_switch h ~sw:4 ~at:2.0 ~recover_after:1.5;
  Engine.run engine ~until:10.;
  Alcotest.(check (list string)) "conservation holds" [] (Chaos.check_quiescence h ())

(* ---------------- spec parsing ---------------- *)

let test_spec_parse_and_apply () =
  let spec = "seed=7; cut:s1-s2@0.5; heal:s1-s2@2.0; crash:s4@1.0+1.0; loss:s0@0.3,burst=4" in
  let ds = match Chaos.parse spec with Ok ds -> ds | Error e -> Alcotest.fail e in
  Alcotest.(check (option int)) "seed extracted" (Some 7) (Chaos.spec_seed ds);
  let topo = T.ring ~n:6 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create ?seed:(Chaos.spec_seed ds) net in
  Chaos.apply h ds;
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "cut applied" false (Net.link_is_up net ~a:1 ~b:2);
  Engine.run engine ~until:1.5;
  Alcotest.(check bool) "crash applied" false (Net.switch_is_up net ~sw:4);
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "healed" true (Net.link_is_up net ~a:1 ~b:2);
  Alcotest.(check bool) "recovered" true (Net.switch_is_up net ~sw:4);
  Alcotest.(check int) "all four fault actions logged" 4 (List.length (Chaos.log h))

let test_spec_rejects_garbage () =
  let bad = [ "cut:s1-s2"; "crash:s4@"; "flap:a-b@1..2"; "loss:s0@weights"; "wibble:3" ] in
  List.iter
    (fun s ->
      match Chaos.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad;
  (* unknown node names surface when applied against a topology *)
  let ds = match Chaos.parse "cut:nope-s1@1.0" with Ok ds -> ds | Error e -> Alcotest.fail e in
  let topo = T.ring ~n:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h = Chaos.create net in
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Chaos.apply: unknown node \"nope\"")
    (fun () -> Chaos.apply h ds)

let () =
  Printf.printf "[test_chaos] CHAOS_SEED=%d\n%!" seed;
  Alcotest.run "ff_chaos"
    [
      ( "generators",
        [
          Alcotest.test_case "flap ends up" `Quick test_flap_always_ends_up;
          Alcotest.test_case "crash and partition" `Quick test_crash_and_partition;
          Alcotest.test_case "deterministic schedules" `Quick test_random_flaps_deterministic;
        ] );
      ( "modes",
        [
          Alcotest.test_case "converges under 30% probe loss" `Quick
            test_convergence_under_probe_loss;
          Alcotest.test_case "cut-vertex probe eater" `Quick
            test_cut_vertex_first_probe_loss_converges;
          Alcotest.test_case "flooding alone fails" `Quick test_flooding_alone_fails_cut_vertex;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "survives link flap" `Quick test_transfer_survives_link_flap;
          Alcotest.test_case "fails fast without path" `Quick
            test_transfer_fails_fast_without_path;
          Alcotest.test_case "no static path" `Quick test_transfer_no_static_path;
        ] );
      ( "repurpose",
        [
          Alcotest.test_case "aborts on crashed destination" `Quick
            test_repurpose_aborts_on_crashed_destination;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "packet conservation" `Quick
            test_packet_conservation_under_faults;
        ] );
      ( "spec",
        [
          Alcotest.test_case "parse and apply" `Quick test_spec_parse_and_apply;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
        ] );
    ]
