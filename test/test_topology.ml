(* Tests for Ff_topology: graph construction, builders, path algorithms. *)

module T = Ff_topology.Topology

let test_build_basic () =
  let t = T.create () in
  let a = T.add_node t ~kind:T.Switch ~name:"a" in
  let b = T.add_node t ~kind:T.Switch ~name:"b" in
  let h = T.add_node t ~kind:T.Host ~name:"h" in
  let l = T.add_link t ~capacity:1e6 ~delay:0.01 a b in
  ignore (T.add_link t h a);
  Alcotest.(check int) "nodes" 3 (T.num_nodes t);
  Alcotest.(check int) "links" 2 (T.num_links t);
  Alcotest.(check int) "degree a" 2 (T.degree t a);
  let link = T.link t l in
  Alcotest.(check (float 0.)) "capacity" 1e6 link.T.capacity;
  Alcotest.(check int) "other end" b (T.link_other_end link a);
  Alcotest.(check bool) "find_link symmetric" true
    (T.find_link t b a = Some link)

let test_reject_self_loop () =
  let t = T.create () in
  let a = T.add_node t ~kind:T.Switch ~name:"a" in
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.add_link: self loop") (fun () ->
      ignore (T.add_link t a a))

let test_reject_duplicate_link () =
  let t = T.create () in
  let a = T.add_node t ~kind:T.Switch ~name:"a" in
  let b = T.add_node t ~kind:T.Switch ~name:"b" in
  ignore (T.add_link t a b);
  Alcotest.check_raises "duplicate" (Invalid_argument "Topology.add_link: duplicate link")
    (fun () -> ignore (T.add_link t b a))

let test_reject_duplicate_name () =
  let t = T.create () in
  ignore (T.add_node t ~kind:T.Switch ~name:"a");
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Topology.add_node: duplicate name a") (fun () ->
      ignore (T.add_node t ~kind:T.Host ~name:"a"))

let test_linear_builder () =
  let t = T.linear ~n:3 () in
  Alcotest.(check int) "nodes" 5 (T.num_nodes t);
  Alcotest.(check int) "links" 4 (T.num_links t);
  let h0 = (T.node_by_name t "h0").T.id and h1 = (T.node_by_name t "h1").T.id in
  match T.shortest_path t ~src:h0 ~dst:h1 with
  | Some p -> Alcotest.(check int) "path length" 5 (List.length p)
  | None -> Alcotest.fail "no path"

let test_ring_builder () =
  let t = T.ring ~n:6 () in
  Alcotest.(check int) "switches" 6 (List.length (T.switches t));
  Alcotest.(check int) "hosts" 6 (List.length (T.hosts t));
  Alcotest.(check bool) "connected" true (T.is_connected t)

let test_dumbbell_builder () =
  let t = T.dumbbell ~pairs:3 () in
  Alcotest.(check int) "hosts" 6 (List.length (T.hosts t));
  Alcotest.(check int) "switches" 2 (List.length (T.switches t))

let test_fat_tree_builder () =
  let t = T.fat_tree ~k:4 () in
  (* k=4: 4 cores, 8 aggs, 8 edges, 16 hosts *)
  Alcotest.(check int) "switches" 20 (List.length (T.switches t));
  Alcotest.(check int) "hosts" 16 (List.length (T.hosts t));
  Alcotest.(check bool) "connected" true (T.is_connected t);
  (* any two hosts in different pods are <= 6 hops apart *)
  let hosts = T.hosts t in
  let h1 = List.hd hosts and h2 = List.nth hosts (List.length hosts - 1) in
  match T.shortest_path t ~src:h1.T.id ~dst:h2.T.id with
  | Some p -> Alcotest.(check bool) "diameter" true (List.length p <= 7)
  | None -> Alcotest.fail "no path in fat tree"

let test_fat_tree_odd_k () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Topology.fat_tree: k must be even and >= 2") (fun () ->
      ignore (T.fat_tree ~k:3 ()))

let test_abilene_builder () =
  let t = T.abilene () in
  Alcotest.(check int) "switches" 11 (List.length (T.switches t));
  Alcotest.(check int) "hosts" 11 (List.length (T.hosts t));
  Alcotest.(check bool) "connected" true (T.is_connected t)

let test_waxman_connected () =
  for seed = 1 to 5 do
    let t = T.waxman ~n:12 ~seed () in
    Alcotest.(check bool) "connected" true (T.is_connected t)
  done

let test_hosts_not_transit () =
  (* two switches joined only through a host must not be connected for
     routing purposes *)
  let t = T.create () in
  let s1 = T.add_node t ~kind:T.Switch ~name:"s1" in
  let s2 = T.add_node t ~kind:T.Switch ~name:"s2" in
  let h = T.add_node t ~kind:T.Host ~name:"h" in
  ignore (T.add_link t s1 h);
  ignore (T.add_link t h s2);
  Alcotest.(check (option (list int))) "no transit through host" None
    (T.shortest_path t ~src:s1 ~dst:s2)

let test_shortest_path_weighted () =
  let t = T.create () in
  let a = T.add_node t ~kind:T.Switch ~name:"a" in
  let b = T.add_node t ~kind:T.Switch ~name:"b" in
  let c = T.add_node t ~kind:T.Switch ~name:"c" in
  ignore (T.add_link t ~delay:0.010 a b);
  ignore (T.add_link t ~delay:0.001 a c);
  ignore (T.add_link t ~delay:0.001 c b);
  (* hop count prefers direct; delay weight prefers the 2-hop detour *)
  Alcotest.(check (option (list int))) "hops" (Some [ a; b ]) (T.shortest_path t ~src:a ~dst:b);
  Alcotest.(check (option (list int)))
    "delay" (Some [ a; c; b ])
    (T.shortest_path ~weight:(fun l -> l.T.delay) t ~src:a ~dst:b)

let test_k_shortest_paths () =
  let lm = T.Fig2.build () in
  let t = lm.T.Fig2.topo in
  let src = List.hd lm.T.Fig2.normal_sources in
  let paths = T.k_shortest_paths ~k:4 t ~src ~dst:lm.T.Fig2.victim in
  Alcotest.(check bool) "at least 3 distinct paths" true (List.length paths >= 3);
  (* increasing length *)
  let lens = List.map List.length paths in
  Alcotest.(check (list int)) "sorted by length" (List.sort compare lens) lens;
  (* all loop-free and valid *)
  List.iter
    (fun p ->
      Alcotest.(check int) "no repeated node" (List.length p)
        (List.length (List.sort_uniq compare p));
      ignore (T.path_links t p))
    paths;
  (* all distinct *)
  Alcotest.(check int) "distinct" (List.length paths)
    (List.length (List.sort_uniq compare paths))

let test_path_helpers () =
  let t = T.linear ~n:2 () in
  let h0 = (T.node_by_name t "h0").T.id in
  let h1 = (T.node_by_name t "h1").T.id in
  let p = Option.get (T.shortest_path t ~src:h0 ~dst:h1) in
  Alcotest.(check int) "links on path" 3 (List.length (T.path_links t p));
  Alcotest.(check bool) "positive delay" true (T.path_delay t p > 0.)

let test_path_links_invalid () =
  let t = T.linear ~n:3 () in
  Alcotest.check_raises "non adjacent"
    (Invalid_argument "Topology.path_links: non-adjacent nodes") (fun () ->
      ignore (T.path_links t [ 0; 4 ]))

let test_critical_links_fig2 () =
  let lm = T.Fig2.build () in
  let t = lm.T.Fig2.topo in
  (* the attacker's metric must rank the two designed critical links at the
     top among agg-adjacent core links *)
  let crit = T.critical_links t ~n:4 in
  let designed = List.map (fun l -> l.T.link_id) lm.T.Fig2.critical in
  let found = List.map (fun l -> l.T.link_id) crit in
  List.iter
    (fun d ->
      Alcotest.(check bool) "designed critical link is ranked high" true (List.mem d found))
    designed

let test_fig2_landmarks () =
  let lm = T.Fig2.build ~bots:6 ~normals:3 () in
  Alcotest.(check int) "bots" 6 (List.length lm.T.Fig2.bot_sources);
  Alcotest.(check int) "normals" 3 (List.length lm.T.Fig2.normal_sources);
  Alcotest.(check int) "decoys" 2 (List.length lm.T.Fig2.decoys);
  Alcotest.(check int) "two critical links" 2 (List.length lm.T.Fig2.critical);
  Alcotest.(check bool) "connected" true (T.is_connected lm.T.Fig2.topo)

let test_edge_betweenness_positive () =
  let t = T.dumbbell ~pairs:2 () in
  let counts = T.edge_betweenness t in
  (* the bottleneck link carries all 4x3/2=6... at least the 4 cross pairs *)
  let bottleneck = Option.get (T.find_link t 0 1) in
  let c = Hashtbl.find counts bottleneck.T.link_id in
  Alcotest.(check bool) "bottleneck is busiest" true (c >= 4.)

let prop_waxman_paths_valid =
  QCheck.Test.make ~name:"waxman shortest paths are adjacency-valid" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let t = T.waxman ~n:8 ~seed () in
      let hosts = T.hosts t in
      List.for_all
        (fun (h1 : T.node) ->
          List.for_all
            (fun (h2 : T.node) ->
              h1.T.id = h2.T.id
              ||
              match T.shortest_path t ~src:h1.T.id ~dst:h2.T.id with
              | None -> false
              | Some p -> (
                try
                  ignore (T.path_links t p);
                  List.hd p = h1.T.id && List.nth p (List.length p - 1) = h2.T.id
                with _ -> false))
            hosts)
        hosts)

let prop_yen_first_is_shortest =
  QCheck.Test.make ~name:"yen's first path equals dijkstra's" ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let t = T.waxman ~n:8 ~seed () in
      let hosts = T.hosts t in
      let h1 = List.hd hosts and h2 = List.nth hosts (List.length hosts - 1) in
      match (T.shortest_path t ~src:h1.T.id ~dst:h2.T.id,
             T.k_shortest_paths ~k:3 t ~src:h1.T.id ~dst:h2.T.id) with
      | Some sp, yp :: _ -> List.length sp = List.length yp
      | None, [] -> true
      | _ -> false)

let () =
  let qcheck =
    List.map Test_seed.to_alcotest [ prop_waxman_paths_valid; prop_yen_first_is_shortest ]
  in
  Alcotest.run "ff_topology"
    [
      ( "construction",
        [
          Alcotest.test_case "basic" `Quick test_build_basic;
          Alcotest.test_case "reject self loop" `Quick test_reject_self_loop;
          Alcotest.test_case "reject duplicate link" `Quick test_reject_duplicate_link;
          Alcotest.test_case "reject duplicate name" `Quick test_reject_duplicate_name;
        ] );
      ( "builders",
        [
          Alcotest.test_case "linear" `Quick test_linear_builder;
          Alcotest.test_case "ring" `Quick test_ring_builder;
          Alcotest.test_case "dumbbell" `Quick test_dumbbell_builder;
          Alcotest.test_case "fat tree" `Quick test_fat_tree_builder;
          Alcotest.test_case "fat tree odd k" `Quick test_fat_tree_odd_k;
          Alcotest.test_case "abilene" `Quick test_abilene_builder;
          Alcotest.test_case "waxman connected" `Quick test_waxman_connected;
          Alcotest.test_case "fig2 landmarks" `Quick test_fig2_landmarks;
        ] );
      ( "paths",
        [
          Alcotest.test_case "hosts not transit" `Quick test_hosts_not_transit;
          Alcotest.test_case "weighted shortest path" `Quick test_shortest_path_weighted;
          Alcotest.test_case "k shortest paths" `Quick test_k_shortest_paths;
          Alcotest.test_case "path helpers" `Quick test_path_helpers;
          Alcotest.test_case "invalid path rejected" `Quick test_path_links_invalid;
        ] );
      ( "betweenness",
        [
          Alcotest.test_case "critical links in fig2" `Quick test_critical_links_fig2;
          Alcotest.test_case "bottleneck betweenness" `Quick test_edge_betweenness_positive;
        ] );
      ("properties", qcheck);
    ]
