(* The SYN-flood proof ring (ISSUE 10): bit-for-bit replay determinism of
   the end-to-end scenario, exact-member state transfer under chaos loss,
   and the accept-backlog regression — the cap holds and an uncompleted
   handshake times out and frees its slot. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet
module Cuckoo = Ff_dataplane.Cuckoo
module Transfer = Ff_scaling.Transfer
module Chaos = Ff_chaos.Chaos
module Loss = Ff_scaling.Loss
module Scenario = Fastflex.Scenario

let ck_count n = if Test_seed.deep then 5 * n else n

(* ---------------- replay determinism ---------------- *)

(* The whole scenario — flood, cookies, cuckoo tracker, mode protocol —
   draws only from seeded PRNGs and per-net counters, so two identical
   invocations in one process must agree on every field, floats
   included. *)
let test_replay_determinism () =
  let defended = Scenario.run_synflood ~defended:true ~duration:25. () in
  let defended' = Scenario.run_synflood ~defended:true ~duration:25. () in
  Alcotest.(check bool) "defended replay bit-for-bit" true (defended = defended');
  let bare = Scenario.run_synflood ~defended:false ~duration:25. () in
  let bare' = Scenario.run_synflood ~defended:false ~duration:25. () in
  Alcotest.(check bool) "undefended replay bit-for-bit" true (bare = bare')

let test_hardened_replay_determinism () =
  let r = Scenario.run_synflood ~defended:true ~hardened:true ~duration:25. () in
  let r' = Scenario.run_synflood ~defended:true ~hardened:true ~duration:25. () in
  Alcotest.(check bool) "hardened replay bit-for-bit" true (r = r')

(* ---------------- listener backlog regression ---------------- *)

let two_hosts () =
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  let s0 = (T.node_by_name topo "s0").T.id in
  Net.set_route net ~sw:s0 ~dst:h1 ~next_hop:h1;
  Net.set_route net ~sw:s0 ~dst:h0 ~next_hop:h0;
  (engine, net, h0, h1)

let syn net ~src ~dst ~flow =
  Net.send_from_host net
    (Packet.make ~src ~dst ~flow ~birth:(Net.now net) ~payload:Packet.Syn ())

(* The small fix under test: the backlog is a hard cap (SYNs past it are
   refused, not queued), and a half-open entry that never completes its
   handshake expires after [syn_timeout] and frees its slot for reuse. *)
let test_backlog_cap_and_timeout () =
  let engine, net, h0, h1 = two_hosts () in
  let l = Flow.Listener.install net ~host:h1 ~backlog:4 ~syn_timeout:0.5 () in
  Engine.schedule engine ~at:0. (fun () ->
      for flow = 1 to 10 do
        syn net ~src:h0 ~dst:h1 ~flow
      done);
  Engine.run engine ~until:0.3;
  Alcotest.(check int) "backlog capped" 4 (Flow.Listener.half_open_count l);
  Alcotest.(check int) "excess SYNs refused" 6 (Flow.Listener.backlog_drops l);
  Alcotest.(check (float 0.)) "occupancy pegged" 1.0 (Flow.Listener.occupancy l);
  Engine.run engine ~until:2.0;
  Alcotest.(check int) "uncompleted handshakes timed out" 4 (Flow.Listener.timeouts l);
  Alcotest.(check int) "slots freed" 0 (Flow.Listener.half_open_count l);
  Alcotest.(check int) "nothing established" 0 (Flow.Listener.established l);
  (* the freed slots must be reusable *)
  Engine.schedule engine ~at:2.0 (fun () -> syn net ~src:h0 ~dst:h1 ~flow:99);
  Engine.run engine ~until:2.3;
  Alcotest.(check int) "freed slot accepted a new SYN" 1 (Flow.Listener.half_open_count l);
  Alcotest.(check int) "no new refusals" 6 (Flow.Listener.backlog_drops l)

(* A completed handshake must release its half-open slot into
   [established] rather than leaking it until timeout. *)
let test_completed_handshake_frees_slot () =
  let engine, net, h0, h1 = two_hosts () in
  let l = Flow.Listener.install net ~host:h1 ~backlog:4 ~syn_timeout:5.0 () in
  let hs = Flow.Handshake.start net ~src:h0 ~dst:h1 ~conn_interval:100. () in
  Engine.run engine ~until:1.0;
  Alcotest.(check int) "client completed" 1 (Flow.Handshake.completed hs);
  Alcotest.(check int) "server established" 1 (Flow.Listener.established l);
  Alcotest.(check int) "no lingering half-open entry" 0 (Flow.Listener.half_open_count l);
  Alcotest.(check int) "no timeout charged" 0 (Flow.Listener.timeouts l)

(* ---------------- exact-member transfer under chaos ---------------- *)

(* The migration correctness rule: after [send_cuckoo] completes — here
   across a ring whose every switch suffers 30% bursty control-packet
   loss — every member of the source filter answers [member] at the
   destination, and members the destination already held survive the
   union. FEC plus per-group retransmission is what makes "completes"
   reachable under that loss. *)
let prop_transfer_no_false_negatives =
  QCheck2.Test.make ~count:(ck_count 15)
    ~name:"cuckoo state transfer under chaos loss: no false negatives"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150) (int_range 1 1_000_000))
        (int_range 1 10_000))
    (fun (keys, seed) ->
      let topo = T.ring ~n:6 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let h = Chaos.create ~seed net in
      List.iter
        (fun sw ->
          ignore
            (Chaos.burst_loss h ~sw ~start:0. ~until:infinity ~loss:0.3 ~mean_burst:2.
               ~classes:Loss.Control_only ()))
        (Net.switch_ids net);
      let src = Cuckoo.create ~capacity:512 () in
      let dst = Cuckoo.create ~capacity:512 () in
      let pre = [ 0x5A5A5A; 0xA5A5A5 ] in
      List.iter (fun k -> ignore (Cuckoo.insert dst k)) pre;
      List.iter (fun k -> ignore (Cuckoo.insert src k)) keys;
      let complete = ref false in
      (* 30% bursty loss at every one of the 4-5 switches a chunk+ack
         round-trip crosses defeats the default 10-retry budget a few
         percent of the time; the property under test is the union rule,
         not the retry budget, so give the transfer room to finish *)
      let _x =
        Transfer.send_cuckoo net ~src_sw:0 ~dst_sw:3 ~cuckoo:src ~into:dst ~seed
          ~max_retries:40
          ~on_complete:(fun () -> complete := true)
          ()
      in
      Engine.run engine ~until:240.;
      !complete
      && List.for_all (Cuckoo.member dst) keys
      && List.for_all (Cuckoo.member dst) pre)

(* The wire encoding itself is lossless, chaos or not. *)
let prop_wire_roundtrip =
  QCheck2.Test.make ~count:(ck_count 50)
    ~name:"cuckoo wire entries round-trip the snapshot"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 1 1_000_000))
    (fun keys ->
      let c = Cuckoo.create ~capacity:512 () in
      List.iter (fun k -> ignore (Cuckoo.insert c k)) keys;
      let snap = Cuckoo.serialize c in
      Transfer.cuckoo_snapshot_of_entries (Transfer.cuckoo_wire_entries snap) = snap)

let () =
  Alcotest.run "synflood"
    [
      ( "scenario",
        [
          Alcotest.test_case "replay determinism" `Slow test_replay_determinism;
          Alcotest.test_case "hardened replay determinism" `Slow
            test_hardened_replay_determinism;
        ] );
      ( "listener",
        [
          Alcotest.test_case "backlog cap + half-open timeout" `Quick
            test_backlog_cap_and_timeout;
          Alcotest.test_case "completed handshake frees its slot" `Quick
            test_completed_handshake_frees_slot;
        ] );
      ( "transfer",
        List.map Test_seed.to_alcotest
          [ prop_transfer_no_false_negatives; prop_wire_roundtrip ] );
    ]
