(* Tests for Ff_netsim: event engine, link model, routing, transports. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet

(* ---------------- Engine ---------------- *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2. (fun () -> log := 2 :: !log);
  Engine.schedule e ~at:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:3. (fun () -> log := 3 :: !log);
  Engine.run e ~until:10.;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at until" 10. (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1. (fun () -> log := "a" :: !log);
  Engine.schedule e ~at:1. (fun () -> log := "b" :: !log);
  Engine.run e ~until:2.;
  Alcotest.(check (list string)) "fifo on ties" [ "a"; "b" ] (List.rev !log)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~at:5. (fun () -> ());
  Engine.run e ~until:5.;
  Alcotest.(check bool) "raises on past" true
    (try
       Engine.schedule e ~at:1. (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_engine_every_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:1. ~until:5.5 (fun () -> incr count);
  Engine.run e ~until:20.;
  Alcotest.(check int) "five firings" 5 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~at:1. (fun () ->
      Engine.after e ~delay:1. (fun () -> fired := true));
  Engine.run e ~until:3.;
  Alcotest.(check bool) "nested event ran" true !fired

(* Regression: [clear] used to reset the sequence counter but neither the
   clock nor the packet handler, so a cleared engine rejected fresh
   schedules at early times ("in the past") and replayed packets into the
   previous run's handler. A cleared engine must behave like a
   freshly-created one. *)
let test_engine_reuse_after_clear () =
  let e = Engine.create () in
  let first_run = ref 0 and second_run = ref 0 in
  Engine.set_packet_handler e (fun ~to_node:_ ~from_node:_ _ -> incr first_run);
  Engine.schedule_packet e ~at:5. ~to_node:1 ~from_node:0
    (Packet.make ~src:0 ~dst:1 ~flow:1 ~size:100 ~birth:0. ());
  Engine.schedule e ~at:7. (fun () -> ());
  Engine.run e ~until:10.;
  Alcotest.(check int) "first run delivered" 1 !first_run;
  Engine.clear e;
  Alcotest.(check (float 0.)) "clock reset" 0. (Engine.now e);
  Alcotest.(check int) "no pending events" 0 (Engine.pending e);
  (* schedules at times before the previous run's clock must be legal *)
  Engine.set_packet_handler e (fun ~to_node:_ ~from_node:_ _ -> incr second_run);
  Engine.schedule_packet e ~at:1. ~to_node:1 ~from_node:0
    (Packet.make ~src:0 ~dst:1 ~flow:2 ~size:100 ~birth:0. ());
  Engine.run e ~until:2.;
  Alcotest.(check int) "second handler fired" 1 !second_run;
  Alcotest.(check int) "first handler not replayed" 1 !first_run

let test_engine_per_engine_steps () =
  let a = Engine.create () and b = Engine.create () in
  let total0 = Engine.total_steps () in
  for i = 1 to 3 do
    Engine.schedule a ~at:(float_of_int i) (fun () -> ())
  done;
  Engine.schedule b ~at:1. (fun () -> ());
  Engine.run a ~until:10.;
  Engine.run b ~until:10.;
  Alcotest.(check int) "engine a counts its own" 3 (Engine.steps a);
  Alcotest.(check int) "engine b counts its own" 1 (Engine.steps b);
  Alcotest.(check int) "aggregate advanced by both" 4 (Engine.total_steps () - total0);
  Engine.clear a;
  Alcotest.(check int) "steps survive clear (odometer)" 3 (Engine.steps a)

(* ---------------- Link model ---------------- *)

let two_hosts () =
  (* h0 - s0 - h1 with 10 Mb/s links, 1 ms delay *)
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  let s0 = (T.node_by_name topo "s0").T.id in
  Net.set_route net ~sw:s0 ~dst:h1 ~next_hop:h1;
  Net.set_route net ~sw:s0 ~dst:h0 ~next_hop:h0;
  (topo, engine, net, h0, h1, s0)

let test_link_latency () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let arrival = ref 0. in
  (Net.host net h1).Net.fallback_rx <- Some (fun _ -> arrival := Engine.now engine);
  let pkt = Packet.make ~src:h0 ~dst:h1 ~flow:99 ~birth:0. ~size:1000 () in
  Engine.schedule engine ~at:0. (fun () -> Net.send_from_host net pkt);
  Engine.run engine ~until:1.;
  (* 2 hops: 2 x (1000 B / 10 Mb/s = 0.8 ms serialization + 1 ms prop) *)
  Alcotest.(check (float 1e-6)) "store-and-forward latency" 0.0036 !arrival

let test_queue_overflow () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  (* blast 200 packets instantaneously into a 37.5 kB queue *)
  Engine.schedule engine ~at:0. (fun () ->
      for i = 0 to 199 do
        Net.send_from_host net (Packet.make ~src:h0 ~dst:h1 ~flow:1 ~seq:i ~birth:0. ())
      done);
  Engine.run engine ~until:2.;
  let drops = List.assoc_opt "queue-overflow" (Net.drops_by_reason net) in
  Alcotest.(check bool) "drop-tail engaged" true (match drops with Some d -> d > 100 | None -> false)

let test_ttl_expiry_generates_reply () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let got = ref None in
  Hashtbl.replace (Net.host net h0).Net.receivers 7 (fun pkt ->
      match pkt.Packet.payload with
      | Packet.Traceroute_reply { responder; hop; _ } -> got := Some (hop, responder)
      | _ -> ());
  let probe =
    Packet.make ~src:h0 ~dst:h1 ~flow:7 ~ttl:1 ~birth:0.
      ~payload:(Packet.Traceroute_probe { probe_id = 1; probe_ttl = 1 })
      ()
  in
  Engine.schedule engine ~at:0. (fun () -> Net.send_from_host net probe);
  Engine.run engine ~until:1.;
  match !got with
  | Some (hop, responder) ->
    Alcotest.(check int) "hop" 1 hop;
    Alcotest.(check bool) "responder is the switch" true
      ((T.node (Net.topology net) responder).T.kind = T.Switch)
  | None -> Alcotest.fail "no time-exceeded reply"

let test_utilization_tracking () =
  let _, engine, net, h0, h1, s0 = two_hosts () in
  ignore s0;
  let _flow = Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:600. () in
  Engine.run engine ~until:2.;
  (* 600 pps x 1000 B = 4.8 Mb/s on 10 Mb/s *)
  let util = Net.utilization net ~from_:h0 ~to_:s0 in
  Alcotest.(check bool) "util near 0.48" true (Float.abs (util -. 0.48) < 0.1)

(* ---------------- Stages and routing ---------------- *)

let test_stage_management () =
  let _, _, net, _, _, s0 = two_hosts () in
  let st name = { Net.stage_name = name; process = (fun _ _ -> Net.Continue) } in
  Net.add_stage net ~sw:s0 (st "a");
  Net.add_stage net ~sw:s0 (st "b");
  Net.add_stage ~front:true net ~sw:s0 (st "front");
  Alcotest.(check bool) "has a" true (Net.has_stage net ~sw:s0 ~name:"a");
  let names = List.map (fun s -> s.Net.stage_name) (Net.switch net s0).Net.stages in
  Alcotest.(check (list string)) "order" [ "front"; "ttl"; "a"; "b" ] names;
  Net.remove_stage net ~sw:s0 ~name:"a";
  Alcotest.(check bool) "removed" false (Net.has_stage net ~sw:s0 ~name:"a");
  (* replacing by name keeps one instance *)
  Net.add_stage net ~sw:s0 (st "b");
  let names = List.map (fun s -> s.Net.stage_name) (Net.switch net s0).Net.stages in
  Alcotest.(check int) "b unique" 1 (List.length (List.filter (( = ) "b") names))

let test_drop_stage () =
  let _, engine, net, h0, h1, s0 = two_hosts () in
  Net.add_stage net ~sw:s0
    { Net.stage_name = "drop-all"; process = (fun _ _ -> Net.Drop "test-drop") };
  let received = ref 0 in
  (Net.host net h1).Net.fallback_rx <- Some (fun _ -> incr received);
  Engine.schedule engine ~at:0. (fun () ->
      Net.send_from_host net (Packet.make ~src:h0 ~dst:h1 ~flow:1 ~birth:0. ()));
  Engine.run engine ~until:1.;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check (option int)) "reason counted" (Some 1)
    (List.assoc_opt "test-drop" (Net.drops_by_reason net))

let test_pair_routes_override () =
  (* diamond: src can reach dst via a or b; per-dst says a, per-pair says b *)
  let topo = T.create () in
  let src = T.add_node topo ~kind:T.Host ~name:"src" in
  let dst = T.add_node topo ~kind:T.Host ~name:"dst" in
  let i = T.add_node topo ~kind:T.Switch ~name:"in" in
  let a = T.add_node topo ~kind:T.Switch ~name:"a" in
  let b = T.add_node topo ~kind:T.Switch ~name:"b" in
  let o = T.add_node topo ~kind:T.Switch ~name:"out" in
  List.iter (fun (x, y) -> ignore (T.add_link topo x y))
    [ (src, i); (i, a); (i, b); (a, o); (b, o); (o, dst) ];
  let engine = Engine.create () in
  let net = Net.create engine topo in
  Net.set_route net ~sw:i ~dst ~next_hop:a;
  Net.set_route net ~sw:a ~dst ~next_hop:o;
  Net.set_route net ~sw:b ~dst ~next_hop:o;
  let seen_at_b = ref 0 in
  Net.add_stage net ~sw:b
    {
      Net.stage_name = "spy";
      process =
        (fun _ pkt ->
          (match pkt.Packet.payload with Packet.Data -> incr seen_at_b | _ -> ());
          Net.Continue);
    };
  Net.set_pair_route net ~sw:i ~src ~dst ~next_hop:b;
  Engine.schedule engine ~at:0. (fun () ->
      Net.send_from_host net (Packet.make ~src ~dst ~flow:1 ~birth:0. ()));
  Engine.run engine ~until:1.;
  Alcotest.(check int) "pair route wins" 1 !seen_at_b;
  Alcotest.(check (option int)) "lookup" (Some b) (Net.pair_route_lookup net ~sw:i ~src ~dst)

let test_current_path () =
  let lm = T.Fig2.build () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  let src = List.hd lm.T.Fig2.normal_sources in
  let dst = lm.T.Fig2.victim in
  (match T.shortest_path lm.T.Fig2.topo ~src ~dst with
  | Some p -> Net.install_path net ~dst p
  | None -> Alcotest.fail "no path");
  match Net.current_path net ~src ~dst with
  | Some p ->
    Alcotest.(check int) "starts at src" src (List.hd p);
    Alcotest.(check int) "ends at dst" dst (List.nth p (List.length p - 1))
  | None -> Alcotest.fail "current_path failed"

let test_current_path_cycle () =
  let topo = T.create () in
  let src = T.add_node topo ~kind:T.Host ~name:"src" in
  let dst = T.add_node topo ~kind:T.Host ~name:"dst" in
  let a = T.add_node topo ~kind:T.Switch ~name:"a" in
  let b = T.add_node topo ~kind:T.Switch ~name:"b" in
  let c = T.add_node topo ~kind:T.Switch ~name:"c" in
  List.iter (fun (x, y) -> ignore (T.add_link topo x y))
    [ (src, a); (a, b); (b, c); (c, a); (c, dst) ];
  let engine = Engine.create () in
  let net = Net.create engine topo in
  (* a -> b -> c -> a: the table walk must detect the loop and give up
     rather than spin or fabricate a path *)
  Net.set_route net ~sw:a ~dst ~next_hop:b;
  Net.set_route net ~sw:b ~dst ~next_hop:c;
  Net.set_route net ~sw:c ~dst ~next_hop:a;
  Alcotest.(check (option (list int)))
    "routing cycle yields no path" None
    (Net.current_path net ~src ~dst)

let test_switch_down_and_backup () =
  let topo = T.create () in
  let src = T.add_node topo ~kind:T.Host ~name:"src" in
  let dst = T.add_node topo ~kind:T.Host ~name:"dst" in
  let i = T.add_node topo ~kind:T.Switch ~name:"in" in
  let a = T.add_node topo ~kind:T.Switch ~name:"a" in
  let b = T.add_node topo ~kind:T.Switch ~name:"b" in
  let o = T.add_node topo ~kind:T.Switch ~name:"out" in
  List.iter (fun (x, y) -> ignore (T.add_link topo x y))
    [ (src, i); (i, a); (i, b); (a, o); (b, o); (o, dst) ];
  let engine = Engine.create () in
  let net = Net.create engine topo in
  Net.set_route net ~sw:i ~dst ~next_hop:a;
  Net.set_route net ~sw:a ~dst ~next_hop:o;
  Net.set_route net ~sw:b ~dst ~next_hop:o;
  let received = ref 0 in
  (Net.host net dst).Net.fallback_rx <- Some (fun _ -> incr received);
  (* no backup: packet dies at i when a goes down *)
  Net.set_switch_up net ~sw:a false;
  Engine.schedule engine ~at:0. (fun () ->
      Net.send_from_host net (Packet.make ~src ~dst ~flow:1 ~birth:0. ()));
  Engine.run engine ~until:0.5;
  Alcotest.(check int) "no delivery without backup" 0 !received;
  (* with a backup route, fast reroute kicks in *)
  Net.set_backup_route net ~sw:i ~dst ~next_hop:b;
  Engine.schedule engine ~at:0.6 (fun () ->
      Net.send_from_host net (Packet.make ~src ~dst ~flow:1 ~birth:0.6 ()));
  Engine.run engine ~until:1.;
  Alcotest.(check int) "fast reroute delivers" 1 !received

let test_link_failure () =
  let _, engine, net, h0, h1, s0 = two_hosts () in
  let f = Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:100. () in
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "link initially up" true (Net.link_is_up net ~a:s0 ~b:h1);
  Net.set_link_up net ~a:s0 ~b:h1 false;
  Engine.run engine ~until:2.;
  let at_failure = Flow.Cbr.delivered_bytes f in
  Engine.run engine ~until:3.;
  Alcotest.(check (float 0.)) "nothing delivered while down" at_failure
    (Flow.Cbr.delivered_bytes f);
  Alcotest.(check bool) "drops counted" true
    (List.assoc_opt "link-down" (Net.drops_by_reason net) <> None);
  Net.set_link_up net ~a:s0 ~b:h1 true;
  Engine.run engine ~until:4.;
  Alcotest.(check bool) "recovers after repair" true
    (Flow.Cbr.delivered_bytes f > at_failure +. 50_000.)

let test_link_failure_rejects_non_adjacent () =
  let _, _, net, h0, h1, _ = two_hosts () in
  Alcotest.check_raises "non adjacent" (Invalid_argument "Net.set_link_up: nodes not adjacent")
    (fun () -> Net.set_link_up net ~a:h0 ~b:h1 false)

let test_tracing_follows_packet () =
  let topo = T.linear ~n:3 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  (match T.shortest_path topo ~src:h0 ~dst:h1 with
  | Some p -> Net.install_path net ~dst:h1 p
  | None -> Alcotest.fail "no path");
  let events = Net.trace_flow net ~flow:42 in
  let pkt = Packet.make ~src:h0 ~dst:h1 ~flow:42 ~birth:0. () in
  Engine.schedule engine ~at:0. (fun () -> Net.send_from_host net pkt);
  (* a second flow should not pollute the trace *)
  Engine.schedule engine ~at:0. (fun () ->
      Net.send_from_host net (Packet.make ~src:h0 ~dst:h1 ~flow:7 ~birth:0. ()));
  Engine.run engine ~until:1.;
  let ordered = List.rev !events in
  let kinds = List.map (fun (e : Net.trace_event) -> e.Net.kind) ordered in
  Alcotest.(check int) "3 switch hops + delivery" 4 (List.length kinds);
  Alcotest.(check bool) "ends with delivery" true
    (match List.rev kinds with Net.Host_delivery :: _ -> true | _ -> false);
  let hops =
    List.filter_map
      (fun (e : Net.trace_event) ->
        match e.Net.kind with Net.Switch_arrival -> Some (T.node topo e.Net.node).T.name | _ -> None)
      ordered
  in
  Alcotest.(check (list string)) "path via trace" [ "s0"; "s1"; "s2" ] hops;
  (* timestamps increase *)
  let times = List.map (fun (e : Net.trace_event) -> e.Net.time) ordered in
  Alcotest.(check (list (float 0.))) "monotone timestamps" (List.sort compare times) times

let test_tracing_captures_drop () =
  let _, engine, net, h0, h1, s0 = two_hosts () in
  Net.add_stage net ~sw:s0
    { Net.stage_name = "drop-all"; process = (fun _ _ -> Net.Drop "traced-drop") };
  let events = Net.trace_flow net ~flow:9 in
  Engine.schedule engine ~at:0. (fun () ->
      Net.send_from_host net (Packet.make ~src:h0 ~dst:h1 ~flow:9 ~birth:0. ()));
  Engine.run engine ~until:1.;
  Alcotest.(check bool) "drop event recorded" true
    (List.exists
       (fun (e : Net.trace_event) -> e.Net.kind = Net.Packet_drop "traced-drop")
       !events);
  (* tracer can be cleared *)
  Net.set_tracer net None;
  let before = List.length !events in
  Engine.schedule engine ~at:1.5 (fun () ->
      Net.send_from_host net (Packet.make ~src:h0 ~dst:h1 ~flow:9 ~birth:1.5 ()));
  Engine.run engine ~until:2.;
  Alcotest.(check int) "no events after clearing" before (List.length !events)

(* ---------------- Transports ---------------- *)

let test_tcp_transfers () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f = Flow.Tcp.start net ~src:h0 ~dst:h1 () in
  Engine.run engine ~until:5.;
  (* 10 Mb/s for ~5 s = ~6 MB ceiling; expect most of it *)
  Alcotest.(check bool) "delivered > 4 MB" true (Flow.Tcp.delivered_bytes f > 4_000_000.);
  Alcotest.(check bool) "rtt measured" true (Flow.Tcp.srtt f > 0.001)

let test_tcp_congestion_shares () =
  let topo = T.dumbbell ~capacity:20_000_000. ~bottleneck:10_000_000. ~pairs:2 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let id n = (T.node_by_name topo n).T.id in
  let f1 = Flow.Tcp.start net ~src:(id "src0") ~dst:(id "dst0") () in
  let f2 = Flow.Tcp.start net ~src:(id "src1") ~dst:(id "dst1") () in
  Engine.run engine ~until:10.;
  let d1 = Flow.Tcp.delivered_bytes f1 and d2 = Flow.Tcp.delivered_bytes f2 in
  let total = d1 +. d2 in
  (* bottleneck is 1.25 MB/s; expect > 80% utilization over 10 s *)
  Alcotest.(check bool) "bottleneck well utilized" true (total > 10_000_000.);
  (* and a roughly fair split (within 3x of each other) *)
  Alcotest.(check bool) "roughly fair" true (Float.max d1 d2 /. Float.min d1 d2 < 3.)

let test_tcp_max_cwnd_caps_rate () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f = Flow.Tcp.start net ~src:h0 ~dst:h1 ~max_cwnd:2. () in
  Engine.run engine ~until:5.;
  (* cwnd 2 on ~4 ms RTT: ~500 kB/s max, far under the 1.25 MB/s line rate *)
  Alcotest.(check bool) "low-rate flow" true (Flow.Tcp.delivered_bytes f < 3_000_000.);
  Alcotest.(check bool) "cwnd capped" true (Flow.Tcp.cwnd f <= 2.)

let test_tcp_pause_resume () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f = Flow.Tcp.start net ~src:h0 ~dst:h1 () in
  Engine.run engine ~until:1.;
  Flow.Tcp.pause f;
  let at_pause = Flow.Tcp.delivered_bytes f in
  Engine.run engine ~until:3.;
  let during_pause = Flow.Tcp.delivered_bytes f -. at_pause in
  Alcotest.(check bool) "little delivery while paused" true (during_pause < 100_000.);
  Flow.Tcp.resume f ~now:3.;
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "resumes" true (Flow.Tcp.delivered_bytes f -. at_pause > 1_000_000.)

let test_cbr_rate () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f = Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:100. () in
  Engine.run engine ~until:10.;
  let sent = Flow.Cbr.sent_packets f in
  Alcotest.(check bool) "about 1000 packets" true (abs (sent - 1000) < 30);
  Alcotest.(check bool) "delivered" true (Flow.Cbr.delivered_bytes f > 900_000.)

let test_cbr_pulsing_duty () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f =
    Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:100. ~pulse_period:1.0 ~pulse_duty:0.2 ()
  in
  Engine.run engine ~until:10.;
  (* only ~20% of slots send *)
  Alcotest.(check bool) "duty cycle respected" true
    (abs (Flow.Cbr.sent_packets f - 200) < 40)

let test_traceroute_full_path () =
  let topo = T.linear ~n:3 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let h0 = (T.node_by_name topo "h0").T.id in
  let h1 = (T.node_by_name topo "h1").T.id in
  (match T.shortest_path topo ~src:h0 ~dst:h1 with
  | Some p ->
    Net.install_path net ~dst:h1 p;
    Net.install_path net ~dst:h0 (List.rev p)
  | None -> Alcotest.fail "no path");
  let result = ref [] in
  Flow.Traceroute.run net ~src:h0 ~dst:h1 ~on_done:(fun hops -> result := hops) ();
  Engine.run engine ~until:3.;
  let names = List.map (fun (_, r) -> (T.node topo r).T.name) !result in
  Alcotest.(check (list string)) "hops in order" [ "s0"; "s1"; "s2"; "h1" ] names

(* ---------------- Monitors ---------------- *)

let test_monitor_sampling () =
  let _, engine, net, h0, h1, s0 = two_hosts () in
  let f = Flow.Tcp.start net ~src:h0 ~dst:h1 () in
  let util =
    Ff_netsim.Monitor.link_utilization net ~from_:s0 ~to_:h1 ~period:0.5 ~until:4. ()
  in
  let goodput =
    Ff_netsim.Monitor.aggregate_goodput net ~flows:[ f ] ~period:0.5 ~name:"g" ()
  in
  Engine.run engine ~until:5.;
  (* samples at t = 0.0, 0.5 .. 4.0 *)
  Alcotest.(check int) "util samples bounded by until" 9 (Ff_util.Series.length util);
  Alcotest.(check bool) "goodput sampled" true (Ff_util.Series.length goodput >= 9);
  (* both series see the busy link *)
  let late_util =
    List.filter_map (fun (t, v) -> if t > 2. then Some v else None) (Ff_util.Series.points util)
  in
  Alcotest.(check bool) "link hot in steady state" true (Ff_util.Stats.mean late_util > 0.7)

let test_monitor_normalized () =
  let _, engine, net, h0, h1, _ = two_hosts () in
  let f = Flow.Tcp.start net ~src:h0 ~dst:h1 () in
  let norm =
    Ff_netsim.Monitor.normalized_goodput net ~flows:[ f ] ~baseline:1_000_000. ~period:0.5
      ~name:"n" ()
  in
  Engine.run engine ~until:5.;
  let late =
    List.filter_map (fun (t, v) -> if t > 2. then Some v else None) (Ff_util.Series.points norm)
  in
  (* ~1.18 MB/s over a 1 MB/s baseline *)
  Alcotest.(check bool) "normalization applied" true
    (Ff_util.Stats.mean late > 1.0 && Ff_util.Stats.mean late < 1.4)

(* ---------------- Properties ---------------- *)

(* Regression: [Monitor.sample]'s start used to default to 0., so a
   monitor attached after the clock advanced raised through
   [Engine.every] (first tick scheduled in the past). *)
let test_monitor_attach_mid_run () =
  let topo = T.linear ~n:1 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  ignore net;
  Engine.run engine ~until:5.;
  let s = Ff_netsim.Monitor.sample engine ~period:1. ~name:"mid" (fun now -> now) in
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "sampled after attach" true (Ff_util.Series.length s >= 4);
  (match Ff_util.Series.points s with
  | (t0, _) :: _ -> Alcotest.(check bool) "first sample not in the past" true (t0 >= 5.)
  | [] -> Alcotest.fail "no samples")

(* Both lanes share one (time, seq) key: however thunk and packet events
   interleave, they must fire in global schedule order at equal
   timestamps, exactly like the old single-heap engine. *)
let prop_two_lane_order =
  QCheck.Test.make ~name:"thunk and packet lanes merge in (time, seq) order" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 80) (pair bool (int_range 0 9)))
    (fun ops ->
      let e = Engine.create () in
      let log = ref [] in
      Engine.set_packet_handler e (fun ~to_node ~from_node:_ _pkt -> log := to_node :: !log);
      List.iteri
        (fun i (packet_lane, ti) ->
          let at = float_of_int ti in
          if packet_lane then
            Engine.schedule_packet e ~at ~to_node:i ~from_node:0
              (Packet.make ~src:0 ~dst:0 ~flow:0 ~birth:0. ())
          else Engine.schedule e ~at (fun () -> log := i :: !log))
        ops;
      Engine.run e ~until:100.;
      let expected =
        List.mapi (fun i (_, ti) -> (ti, i)) ops
        |> List.stable_sort compare |> List.map snd
      in
      List.rev !log = expected)

(* Dense routing state (int-array tables + open-addressed pair table)
   must be observationally identical to the naive Hashtbl model it
   replaced, under any install/clear interleaving. [clear_routes] keeps
   backup entries and restores host attachments — the model mirrors that. *)
let prop_routes_match_reference =
  QCheck.Test.make ~name:"dense route tables match a Hashtbl reference model" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 120)
              (quad (int_range 0 3) small_nat small_nat small_nat))
    (fun ops ->
      let topo = T.linear ~n:4 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let sws = Array.of_list (Net.switch_ids net) in
      let all_nodes = Array.init (T.num_nodes topo) Fun.id in
      let pick a i = a.(i mod Array.length a) in
      let routes : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let backups : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let pairs : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
      let restore_attachments sw =
        List.iter (fun h -> Hashtbl.replace routes (sw, h) h) (Net.attached_hosts net ~sw)
      in
      Array.iter restore_attachments sws;
      List.iter
        (fun (op, a, b, c) ->
          let sw = pick sws a in
          match op with
          | 0 ->
            Net.set_route net ~sw ~dst:(pick all_nodes b) ~next_hop:(pick all_nodes c);
            Hashtbl.replace routes (sw, pick all_nodes b) (pick all_nodes c)
          | 1 ->
            Net.set_backup_route net ~sw ~dst:(pick all_nodes b) ~next_hop:(pick all_nodes c);
            Hashtbl.replace backups (sw, pick all_nodes b) (pick all_nodes c)
          | 2 ->
            Net.set_pair_route net ~sw ~src:(pick all_nodes b) ~dst:(pick all_nodes c)
              ~next_hop:(pick all_nodes (b + c));
            Hashtbl.replace pairs (sw, pick all_nodes b, pick all_nodes c)
              (pick all_nodes (b + c))
          | _ ->
            Net.clear_routes net ~sw;
            Hashtbl.iter (fun (s, d) _ -> if s = sw then Hashtbl.remove routes (s, d))
              (Hashtbl.copy routes);
            Hashtbl.iter (fun (s, src, d) _ -> if s = sw then Hashtbl.remove pairs (s, src, d))
              (Hashtbl.copy pairs);
            restore_attachments sw)
        ops;
      Array.for_all
        (fun sw ->
          Array.for_all
            (fun dst ->
              Net.route_lookup net ~sw ~dst = Hashtbl.find_opt routes (sw, dst)
              && Net.backup_route_lookup net ~sw ~dst = Hashtbl.find_opt backups (sw, dst)
              && Array.for_all
                   (fun src ->
                     Net.pair_route_lookup net ~sw ~src ~dst
                     = Hashtbl.find_opt pairs (sw, src, dst))
                   all_nodes)
            all_nodes
          && List.sort compare (Net.route_entries net ~sw)
             = List.sort compare
                 (Hashtbl.fold (fun (s, d) nh acc -> if s = sw then (d, nh) :: acc else acc)
                    routes [])
          && List.sort compare (Net.pair_route_entries net ~sw)
             = List.sort compare
                 (Hashtbl.fold
                    (fun (s, src, d) nh acc -> if s = sw then ((src, d), nh) :: acc else acc)
                    pairs []))
        sws)

let prop_conservation =
  QCheck.Test.make ~name:"delivery never exceeds transmission" ~count:25
    QCheck.(pair (int_range 10 800) (int_range 200 1400))
    (fun (rate_pps, packet_size) ->
      let _, engine, net, h0, h1, _ = two_hosts () in
      ignore net;
      let f =
        Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:(float_of_int rate_pps) ~packet_size ()
      in
      Engine.run engine ~until:3.;
      Flow.Cbr.delivered_bytes f
      <= float_of_int (Flow.Cbr.sent_packets f * packet_size))

let prop_tcp_no_duplicate_delivery =
  QCheck.Test.make ~name:"tcp counts each sequence once despite retransmissions" ~count:15
    QCheck.(int_range 1 64)
    (fun max_cwnd ->
      let topo = T.dumbbell ~capacity:20_000_000. ~bottleneck:5_000_000. ~pairs:1 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let hosts = T.hosts topo in
      List.iter
        (fun (h1 : T.node) ->
          List.iter
            (fun (h2 : T.node) ->
              if h1.T.id <> h2.T.id then
                match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
                | Some p -> Net.install_path net ~dst:h2.T.id p
                | None -> ())
            hosts)
        hosts;
      let id n = (T.node_by_name topo n).T.id in
      let f =
        Flow.Tcp.start net ~src:(id "src0") ~dst:(id "dst0")
          ~max_cwnd:(float_of_int max_cwnd) ()
      in
      Engine.run engine ~until:4.;
      (* delivered counts distinct sequences; sent includes retransmissions *)
      Flow.Tcp.delivered_bytes f <= float_of_int (Flow.Tcp.sent_packets f * 1000))

let prop_utilization_bounded =
  QCheck.Test.make ~name:"utilization estimate stays within [0,1]" ~count:20
    QCheck.(int_range 100 3000)
    (fun rate_pps ->
      let _, engine, net, h0, h1, s0 = two_hosts () in
      ignore (Flow.Cbr.start net ~src:h0 ~dst:h1 ~rate_pps:(float_of_int rate_pps) ());
      Engine.run engine ~until:2.;
      let u = Net.utilization net ~from_:h0 ~to_:s0 in
      u >= 0. && u <= 1.)

let () =
  Alcotest.run "ff_netsim"
    [
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_engine_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "every/until" `Quick test_engine_every_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "reuse after clear" `Quick test_engine_reuse_after_clear;
          Alcotest.test_case "per-engine steps" `Quick test_engine_per_engine_steps;
        ] );
      ( "links",
        [
          Alcotest.test_case "latency" `Quick test_link_latency;
          Alcotest.test_case "queue overflow" `Quick test_queue_overflow;
          Alcotest.test_case "ttl expiry reply" `Quick test_ttl_expiry_generates_reply;
          Alcotest.test_case "utilization" `Quick test_utilization_tracking;
        ] );
      ( "switching",
        [
          Alcotest.test_case "stage management" `Quick test_stage_management;
          Alcotest.test_case "drop stage" `Quick test_drop_stage;
          Alcotest.test_case "pair routes override" `Quick test_pair_routes_override;
          Alcotest.test_case "current path" `Quick test_current_path;
          Alcotest.test_case "current path cycle" `Quick test_current_path_cycle;
          Alcotest.test_case "switch down + backup" `Quick test_switch_down_and_backup;
          Alcotest.test_case "link failure" `Quick test_link_failure;
          Alcotest.test_case "link failure validation" `Quick
            test_link_failure_rejects_non_adjacent;
          Alcotest.test_case "tracing follows packet" `Quick test_tracing_follows_packet;
          Alcotest.test_case "tracing captures drop" `Quick test_tracing_captures_drop;
        ] );
      ( "transport",
        [
          Alcotest.test_case "tcp transfers" `Quick test_tcp_transfers;
          Alcotest.test_case "tcp shares bottleneck" `Quick test_tcp_congestion_shares;
          Alcotest.test_case "tcp max cwnd" `Quick test_tcp_max_cwnd_caps_rate;
          Alcotest.test_case "tcp pause/resume" `Quick test_tcp_pause_resume;
          Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
          Alcotest.test_case "cbr pulsing" `Quick test_cbr_pulsing_duty;
          Alcotest.test_case "traceroute path" `Quick test_traceroute_full_path;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "sampling" `Quick test_monitor_sampling;
          Alcotest.test_case "normalized goodput" `Quick test_monitor_normalized;
          Alcotest.test_case "attach mid-run" `Quick test_monitor_attach_mid_run;
        ] );
      ( "properties",
        List.map Test_seed.to_alcotest
          [
            prop_conservation;
            prop_tcp_no_duplicate_delivery;
            prop_utilization_bounded;
            prop_two_lane_order;
            prop_routes_match_reference;
          ] );
    ]
