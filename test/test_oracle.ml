(* Tests for Ff_oracle: the reference queue/routing/mode semantics and
   the bounded model checker over the anti-entropy protocol. *)

module T = Ff_topology.Topology
module Oracle = Ff_oracle.Oracle
module Explore = Ff_oracle.Explore

(* ---------------- Oracle.Queue ---------------- *)

let test_queue_order () =
  let q = Oracle.Queue.empty in
  let q = Oracle.Queue.push q ~at:2.0 "a" in
  let q = Oracle.Queue.push q ~at:1.0 "b" in
  let q = Oracle.Queue.push q ~at:2.0 "c" in
  let q = Oracle.Queue.push q ~at:1.0 "d" in
  let rec drain q acc =
    match Oracle.Queue.pop q with
    | None -> List.rev acc
    | Some ((_, _, x), q) -> drain q (x :: acc)
  in
  (* time-major order, FIFO among equal times *)
  Alcotest.(check (list string)) "order" [ "b"; "d"; "a"; "c" ] (drain q []);
  Alcotest.(check bool) "empty" true (Oracle.Queue.is_empty Oracle.Queue.empty);
  Alcotest.(check int) "length" 4 (Oracle.Queue.length q)

(* ---------------- Oracle.Routing ---------------- *)

let builders =
  [
    ("linear", T.linear ~n:4 ());
    ("ring", T.ring ~n:6 ());
    ("dumbbell", T.dumbbell ~pairs:3 ());
    ("abilene", T.abilene ());
  ]

let test_routing_matches_dijkstra () =
  List.iter
    (fun (name, t) ->
      let hosts = T.hosts t in
      List.iter
        (fun (h1 : T.node) ->
          List.iter
            (fun (h2 : T.node) ->
              if h1.T.id <> h2.T.id then
                let fast = T.shortest_path t ~src:h1.T.id ~dst:h2.T.id in
                let slow = Oracle.Routing.shortest_path t ~src:h1.T.id ~dst:h2.T.id in
                match (fast, slow) with
                | None, None -> ()
                | Some p, Some q ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s %d->%d length" name h1.T.id h2.T.id)
                    (List.length p) (List.length q);
                  (* the oracle path must itself be adjacency-valid *)
                  ignore (T.path_links t q);
                  Alcotest.(check int) "starts at src" h1.T.id (List.hd q);
                  Alcotest.(check int) "ends at dst" h2.T.id (List.nth q (List.length q - 1))
                | _ ->
                  Alcotest.failf "%s %d->%d: dijkstra and oracle disagree on reachability"
                    name h1.T.id h2.T.id)
            hosts)
        hosts)
    builders

let test_routing_region_ring () =
  let t = T.ring ~n:6 () in
  let sw = List.map (fun (n : T.node) -> n.T.id) (T.switches t) in
  let origin = List.hd sw in
  let region = Oracle.Routing.region t ~origin ~ttl:2 in
  (* a ring of 6: ttl 2 reaches everything except the antipode *)
  Alcotest.(check int) "region size" 5 (List.length region);
  Alcotest.(check bool) "origin included" true (List.mem origin region);
  let far =
    List.filter (fun s -> Oracle.Routing.switch_distance t ~from_:origin ~to_:s = Some 3) sw
  in
  List.iter
    (fun s -> Alcotest.(check bool) "antipode excluded" false (List.mem s region))
    far

let test_routing_hosts_never_transit () =
  let t = T.create () in
  let s1 = T.add_node t ~kind:T.Switch ~name:"s1" in
  let s2 = T.add_node t ~kind:T.Switch ~name:"s2" in
  let h = T.add_node t ~kind:T.Host ~name:"h" in
  ignore (T.add_link t s1 h);
  ignore (T.add_link t h s2);
  Alcotest.(check (option (list int))) "no transit through host" None
    (Oracle.Routing.shortest_path t ~src:s1 ~dst:s2)

(* ---------------- model checker ---------------- *)

let show_report name (r : Explore.report) =
  Printf.printf
    "[explore] %s: %d states, %d transitions, %d terminals (%d converged), exhausted=%b\n%!"
    name r.states r.transitions r.terminals r.converged r.exhausted

let check_clean name (r : Explore.report) =
  show_report name r;
  Alcotest.(check bool) (name ^ ": exhausted (no silent truncation)") true r.exhausted;
  Alcotest.(check (list string)) (name ^ ": no violations") [] r.violations;
  Alcotest.(check bool) (name ^ ": explored something") true (r.states > 1);
  Alcotest.(check bool) (name ^ ": has terminal states") true (r.terminals > 0);
  Alcotest.(check int) (name ^ ": every terminal converged") r.terminals r.converged

let test_explore_line3 () =
  check_clean "line3 raise+clear" (Explore.run (Explore.default ~adj:(Explore.line 3)))

let test_explore_triangle () =
  check_clean "triangle raise+clear" (Explore.run (Explore.default ~adj:(Explore.complete 3)))

let test_explore_raise_only_loss2 () =
  let cfg =
    { (Explore.default ~adj:(Explore.line 3)) with
      Explore.include_clear = false;
      loss_budget = 2;
    }
  in
  check_clean "line3 raise-only loss=2" (Explore.run cfg)

let test_explore_region_boundary () =
  (* region_ttl 2 on a 4-switch line: the far switch must never hear the
     epoch, on any interleaving *)
  let cfg =
    { (Explore.default ~adj:(Explore.line 4)) with
      Explore.region_ttl = 2;
      include_clear = false;
    }
  in
  check_clean "line4 ttl=2 boundary" (Explore.run cfg)

let test_explore_flooding_alone_fails () =
  (* with anti-entropy off the model is fire-and-forget flooding: one
     lost probe strands the tail of the line in the wrong mode, and the
     checker must find that interleaving *)
  let cfg =
    { (Explore.default ~adj:(Explore.line 3)) with
      Explore.anti_entropy = false;
      include_clear = false;
    }
  in
  let r = Explore.run cfg in
  show_report "line3 no-anti-entropy" r;
  Alcotest.(check bool) "exhausted" true r.Explore.exhausted;
  Alcotest.(check bool) "finds the convergence hole" true (r.Explore.violations <> []);
  match r.Explore.counterexample with
  | None -> Alcotest.fail "no counterexample trace"
  | Some trace ->
    Alcotest.(check bool) "trace contains a loss" true
      (List.exists (fun s -> String.length s >= 4 && String.sub s 0 4 = "lose") trace)

let test_explore_deep () =
  (* CI-only (@deep): wider graphs, bigger loss budgets *)
  if Test_seed.deep then begin
    check_clean "line4 raise+clear"
      (Explore.run (Explore.default ~adj:(Explore.line 4)));
    check_clean "cycle4 raise-only loss=2"
      (Explore.run
         { (Explore.default ~adj:(Explore.cycle 4)) with
           Explore.include_clear = false;
           loss_budget = 2;
         });
    check_clean "cycle5 raise-only"
      (Explore.run
         { (Explore.default ~adj:(Explore.cycle 5)) with Explore.include_clear = false })
  end

let () =
  Alcotest.run "ff_oracle"
    [
      ("queue", [ Alcotest.test_case "time-seq order" `Quick test_queue_order ]);
      ( "routing",
        [
          Alcotest.test_case "matches dijkstra on builders" `Quick test_routing_matches_dijkstra;
          Alcotest.test_case "region on a ring" `Quick test_routing_region_ring;
          Alcotest.test_case "hosts never transit" `Quick test_routing_hosts_never_transit;
        ] );
      ( "model checker",
        [
          Alcotest.test_case "line3 raise+clear exhaustive" `Quick test_explore_line3;
          Alcotest.test_case "triangle raise+clear exhaustive" `Quick test_explore_triangle;
          Alcotest.test_case "line3 raise-only loss=2" `Quick test_explore_raise_only_loss2;
          Alcotest.test_case "region boundary holds" `Quick test_explore_region_boundary;
          Alcotest.test_case "flooding alone fails" `Quick test_explore_flooding_alone_fails;
          Alcotest.test_case "deep sweeps" `Slow test_explore_deep;
        ] );
    ]
