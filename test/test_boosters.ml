(* Tests for Ff_boosters: each defense app exercised on a live simulated
   network. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Packet = Ff_dataplane.Packet
module B = Ff_boosters

let install_all_routes net topo =
  let hosts = T.hosts topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts

let fig2_net () =
  let lm = T.Fig2.build ~bots:8 ~normals:4 () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  install_all_routes net lm.T.Fig2.topo;
  (lm, engine, net)

(* ---------------- Common ---------------- *)

let test_mode_vars () =
  let _, _, net = fig2_net () in
  let sw = Net.switch net (List.hd (Net.switch_ids net)) in
  Alcotest.(check bool) "off by default" false (B.Common.mode_active sw "reroute");
  B.Common.set_mode sw "reroute" true;
  Alcotest.(check bool) "on" true (B.Common.mode_active sw "reroute");
  B.Common.set_mode sw "reroute" false;
  Alcotest.(check bool) "off" false (B.Common.mode_active sw "reroute")

(* [set_mode] keeps two copies of each mode: the [vars] hashtable entry and
   the interned flag bit the per-packet fast path reads. They must agree
   after any sequence of writes, for every known mode name. *)
let test_mode_flag_mirror () =
  let _, _, net = fig2_net () in
  let sw = Net.switch net (List.hd (Net.switch_ids net)) in
  let modes =
    [
      B.Common.mode_classify;
      B.Common.mode_reroute;
      B.Common.mode_obfuscate;
      B.Common.mode_drop;
      B.Common.mode_hcf;
      B.Common.mode_acl;
      B.Common.mode_grl;
    ]
  in
  let check_agree m =
    Alcotest.(check bool)
      (Printf.sprintf "flag bit mirrors vars for %s" m)
      (B.Common.mode_active sw m)
      (B.Common.mode_on sw (B.Common.mode_key m))
  in
  List.iter check_agree modes;
  (* toggle each mode on, then some off, checking the whole set each time:
     setting one mode must not disturb another's bit *)
  List.iter
    (fun m ->
      B.Common.set_mode sw m true;
      List.iter check_agree modes)
    modes;
  List.iter
    (fun m ->
      B.Common.set_mode sw m false;
      List.iter check_agree modes;
      Alcotest.(check bool) "cleared" false (B.Common.mode_active sw m))
    [ B.Common.mode_reroute; B.Common.mode_acl ];
  Alcotest.(check bool) "others stay on" true (B.Common.mode_active sw B.Common.mode_drop)

(* ---------------- LFA detector ---------------- *)

let detector_on_fig2 ?(suspicious_rate = 1_500_000.) ?(min_age = 0.5) (lm : T.Fig2.landmarks)
    net =
  let watched =
    List.map
      (fun (l : T.link) ->
        if l.T.a = lm.T.Fig2.agg then (l.T.a, l.T.b) else (l.T.b, l.T.a))
      lm.T.Fig2.critical
  in
  let alarms = ref [] and clears = ref [] in
  let det =
    B.Lfa_detector.install net ~sw:lm.T.Fig2.agg ~watched ~suspicious_rate ~min_age
      ~dst_flows_min:8
      ~on_alarm:(fun a -> alarms := a :: !alarms)
      ~on_clear:(fun a -> clears := a :: !clears)
      ()
  in
  (det, alarms, clears)

let test_detector_alarms_on_flood () =
  let lm, engine, net = fig2_net () in
  let det, alarms, _ = detector_on_fig2 lm net in
  (* bots flood decoy1 through agg->m1 *)
  let decoy = List.hd lm.T.Fig2.decoys in
  List.iter
    (fun bot -> ignore (Flow.Cbr.start net ~src:bot ~dst:decoy ~rate_pps:200. ()))
    lm.T.Fig2.bot_sources;
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "alarmed" true (B.Lfa_detector.alarmed det);
  (match !alarms with
  | { B.Lfa_detector.switch; attack } :: _ ->
    Alcotest.(check int) "at agg" lm.T.Fig2.agg switch;
    Alcotest.(check bool) "lfa kind" true (attack = Packet.Lfa)
  | [] -> Alcotest.fail "no alarm");
  Alcotest.(check bool) "tracks flows" true (B.Lfa_detector.tracked_flows det >= 8)

let test_detector_quiet_without_attack () =
  let lm, engine, net = fig2_net () in
  let det, alarms, _ = detector_on_fig2 lm net in
  List.iter
    (fun n -> ignore (Flow.Tcp.start net ~src:n ~dst:lm.T.Fig2.victim ~max_cwnd:4. ()))
    lm.T.Fig2.normal_sources;
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "no alarm" false (B.Lfa_detector.alarmed det);
  Alcotest.(check int) "no alarms" 0 (List.length !alarms)

let test_detector_classifies_crossfire_not_normal () =
  let lm, engine, net = fig2_net () in
  let det, _, _ = detector_on_fig2 lm net in
  (* normal: 4 distinct-destination... all to victim, but only 4 flows *)
  let normal_flows =
    List.map
      (fun n -> Flow.Tcp.start net ~src:n ~dst:lm.T.Fig2.victim ~max_cwnd:4. ())
      lm.T.Fig2.normal_sources
  in
  (* crossfire: 24 low-rate flows to one decoy *)
  let decoy = List.hd lm.T.Fig2.decoys in
  let bot_flows =
    List.concat_map
      (fun bot ->
        List.init 3 (fun _ -> Flow.Tcp.start net ~src:bot ~dst:decoy ~max_cwnd:4. ()))
      lm.T.Fig2.bot_sources
  in
  Engine.run engine ~until:8.;
  let suspicious = B.Lfa_detector.suspicious_flows det in
  let bot_ids = List.map Flow.Tcp.flow_id bot_flows in
  let normal_ids = List.map Flow.Tcp.flow_id normal_flows in
  let bot_caught = List.filter (fun f -> List.mem f suspicious) bot_ids in
  let normal_caught = List.filter (fun f -> List.mem f suspicious) normal_ids in
  Alcotest.(check bool) "most bot flows caught" true
    (List.length bot_caught > List.length bot_ids / 2);
  Alcotest.(check int) "no normal flow caught" 0 (List.length normal_caught);
  Alcotest.(check bool) "bots are suspicious sources" true
    (List.exists (fun b -> B.Lfa_detector.is_suspicious_source det b) lm.T.Fig2.bot_sources)

let test_detector_clears_when_attack_stops () =
  let lm, engine, net = fig2_net () in
  let det, _, clears =
    detector_on_fig2 ~suspicious_rate:1_500_000. ~min_age:0.5 lm net
  in
  let decoy = List.hd lm.T.Fig2.decoys in
  let flows =
    List.concat_map
      (fun bot ->
        List.init 3 (fun _ ->
            Flow.Tcp.start net ~src:bot ~dst:decoy ~max_cwnd:4. ~stop:6. ()))
      lm.T.Fig2.bot_sources
  in
  ignore flows;
  Engine.run engine ~until:15.;
  Alcotest.(check bool) "cleared after attack subsides" true (List.length !clears >= 1);
  Alcotest.(check bool) "not alarmed at end" false (B.Lfa_detector.alarmed det)

(* ---------------- Reroute ---------------- *)

let test_reroute_probes_build_tables () =
  let lm, engine, net = fig2_net () in
  let rr = B.Reroute.install net ~roots:[ lm.T.Fig2.victim ] ~probe_interval:0.05 () in
  (* activate the mode on every switch so probing starts *)
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "reroute" true) (Net.switch_ids net);
  Engine.run engine ~until:2.;
  Alcotest.(check bool) "probes flowed" true (B.Reroute.probes_sent rr > 10);
  (* agg must know a next hop toward the victim *)
  match B.Reroute.best_next_hop rr ~sw:lm.T.Fig2.agg ~dst:lm.T.Fig2.victim with
  | Some nh ->
    Alcotest.(check bool) "plausible next hop" true
      (List.mem nh (Net.neighbors_of net lm.T.Fig2.agg))
  | None -> Alcotest.fail "no table entry at agg"

let test_reroute_prefers_uncongested () =
  let lm, engine, net = fig2_net () in
  let rr = B.Reroute.install net ~roots:[ lm.T.Fig2.victim ] ~probe_interval:0.05 () in
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "reroute" true) (Net.switch_ids net);
  (* congest agg->m1 with decoy1 CBR traffic *)
  let decoy = List.hd lm.T.Fig2.decoys in
  List.iter
    (fun bot -> ignore (Flow.Cbr.start net ~src:bot ~dst:decoy ~rate_pps:200. ()))
    lm.T.Fig2.bot_sources;
  Engine.run engine ~until:3.;
  (* the best path toward the victim must avoid the middle switch the decoy
     flood actually crosses *)
  let congested_mid =
    match Net.current_path net ~src:(List.hd lm.T.Fig2.bot_sources) ~dst:decoy with
    | Some path -> List.nth path 3
    | None -> Alcotest.fail "no decoy path"
  in
  (match B.Reroute.best_next_hop rr ~sw:lm.T.Fig2.agg ~dst:lm.T.Fig2.victim with
  | Some nh -> Alcotest.(check bool) "avoids congested link" true (nh <> congested_mid)
  | None -> Alcotest.fail "no entry");
  match B.Reroute.best_metric rr ~sw:lm.T.Fig2.agg ~dst:lm.T.Fig2.victim with
  | Some m -> Alcotest.(check bool) "low metric" true (m < 0.5)
  | None -> Alcotest.fail "no metric"

let test_reroute_steers_marked_packets () =
  let lm, engine, net = fig2_net () in
  let _rr = B.Reroute.install net ~roots:[ lm.T.Fig2.victim ] ~probe_interval:0.05 () in
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "reroute" true) (Net.switch_ids net);
  (* a marking stage at the source edges makes all data suspicious *)
  let mark =
    { Net.stage_name = "mark-all";
      process =
        (fun _ pkt ->
          (match pkt.Packet.payload with
          | Packet.Data -> pkt.Packet.suspicious <- true
          | _ -> ());
          Net.Continue) }
  in
  List.iter
    (fun name -> Net.add_stage net ~sw:(T.node_by_name lm.T.Fig2.topo name).T.id mark)
    [ "e1"; "e2" ];
  let f = Flow.Tcp.start net ~src:(List.hd lm.T.Fig2.normal_sources) ~dst:lm.T.Fig2.victim () in
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "rerouted packets counted" true (B.Reroute.reroutes _rr > 0);
  Alcotest.(check bool) "traffic still delivered" true (Flow.Tcp.delivered_bytes f > 100_000.)

(* ---------------- Obfuscator ---------------- *)

let test_obfuscator_rewrites_traceroute () =
  let lm, engine, net = fig2_net () in
  let topo = lm.T.Fig2.topo in
  let bot = List.hd lm.T.Fig2.bot_sources in
  let decoy = List.hd lm.T.Fig2.decoys in
  (* virtual topology: pretend every hop is the aggregation switch *)
  let fake_path ~src:_ ~dst:_ = Some (List.init 10 (fun _ -> lm.T.Fig2.agg)) in
  let ob = B.Obfuscator.install net ~virtual_path:fake_path () in
  (* obfuscation off: see the real path *)
  let real = ref [] in
  Flow.Traceroute.run net ~src:bot ~dst:decoy ~on_done:(fun h -> real := h) ();
  Engine.run engine ~until:2.;
  (* obfuscation on everywhere: all switch hops must answer as agg *)
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "obfuscate" true) (Net.switch_ids net);
  let fake = ref [] in
  Flow.Traceroute.run net ~src:bot ~dst:decoy ~on_done:(fun h -> fake := h) ();
  Engine.run engine ~until:4.;
  Alcotest.(check bool) "real path has distinct hops" true
    (List.length (List.sort_uniq compare (List.map snd !real)) > 2);
  let fake_switch_hops = List.filter (fun (_, r) -> r <> decoy) !fake in
  Alcotest.(check bool) "some hops obfuscated" true (List.length fake_switch_hops > 0);
  List.iter
    (fun (_, r) ->
      Alcotest.(check string) "answered as agg" "agg" (T.node topo r).T.name)
    fake_switch_hops;
  Alcotest.(check bool) "replies counted" true (B.Obfuscator.obfuscated_replies ob > 0)

(* ---------------- Dropper ---------------- *)

let test_dropper_rate_limits_suspicious () =
  let lm, engine, net = fig2_net () in
  let dr = B.Dropper.install net ~sw:lm.T.Fig2.agg ~rate_limit:200_000. ~drop_prob:0. () in
  B.Common.set_mode (Net.switch net lm.T.Fig2.agg) "drop" true;
  let mark =
    { Net.stage_name = "mark-all";
      process =
        (fun _ pkt ->
          (match pkt.Packet.payload with
          | Packet.Data -> pkt.Packet.suspicious <- true
          | _ -> ());
          Net.Continue) }
  in
  (* mark before the dropper runs: install at the upstream edge *)
  List.iter
    (fun name -> Net.add_stage net ~sw:(T.node_by_name lm.T.Fig2.topo name).T.id mark)
    [ "e1"; "e2" ];
  let f =
    Flow.Cbr.start net ~src:(List.hd lm.T.Fig2.bot_sources) ~dst:(List.hd lm.T.Fig2.decoys)
      ~rate_pps:200. ()
  in
  Engine.run engine ~until:5.;
  (* offered 1.6 Mb/s, limited to 200 kb/s = 25 kB/s *)
  Alcotest.(check bool) "dropped most" true (B.Dropper.dropped dr > 500);
  Alcotest.(check bool) "throughput near the limit" true
    (Flow.Cbr.delivered_bytes f < 350_000.);
  Alcotest.(check int) "one meter" 1 (B.Dropper.metered_flows dr)

let test_dropper_spares_normal () =
  let lm, engine, net = fig2_net () in
  let dr = B.Dropper.install net ~sw:lm.T.Fig2.agg ~rate_limit:200_000. ~drop_prob:0.5 () in
  B.Common.set_mode (Net.switch net lm.T.Fig2.agg) "drop" true;
  let f =
    Flow.Cbr.start net ~src:(List.hd lm.T.Fig2.normal_sources) ~dst:lm.T.Fig2.victim
      ~rate_pps:200. ()
  in
  Engine.run engine ~until:5.;
  Alcotest.(check int) "unmarked traffic untouched" 0 (B.Dropper.dropped dr);
  Alcotest.(check bool) "full throughput" true (Flow.Cbr.delivered_bytes f > 900_000.)

(* ---------------- Heavy hitter ---------------- *)

let test_heavy_hitter_detects_volumetric () =
  let lm, engine, net = fig2_net () in
  let alarms = ref [] in
  let hh =
    B.Heavy_hitter.install net ~sw:lm.T.Fig2.agg ~epoch:0.5 ~threshold_bps:3_000_000.
      ~on_alarm:(fun a -> alarms := a :: !alarms)
      ~on_clear:(fun _ -> ())
      ()
  in
  (* one elephant at ~6.4 Mb/s among mice *)
  let elephant =
    Flow.Cbr.start net ~src:(List.hd lm.T.Fig2.bot_sources) ~dst:lm.T.Fig2.victim
      ~rate_pps:800. ()
  in
  List.iter
    (fun n -> ignore (Flow.Cbr.start net ~src:n ~dst:lm.T.Fig2.victim ~rate_pps:10. ()))
    lm.T.Fig2.normal_sources;
  (* stop mid-epoch so the live HashPipe still holds this epoch's counts *)
  Engine.run engine ~until:3.75;
  Alcotest.(check bool) "alarmed" true (B.Heavy_hitter.alarmed hh);
  (match !alarms with
  | { B.Lfa_detector.attack; _ } :: _ ->
    Alcotest.(check bool) "volumetric kind" true (attack = Packet.Volumetric)
  | [] -> Alcotest.fail "no alarm");
  Alcotest.(check bool) "elephant among offenders" true
    (List.mem (Flow.Cbr.flow_id elephant) (B.Heavy_hitter.offenders hh));
  (* top-k exposes it too *)
  match B.Heavy_hitter.top hh ~k:1 with
  | (k, _) :: _ -> Alcotest.(check int) "top flow" (Flow.Cbr.flow_id elephant) k
  | [] -> Alcotest.fail "empty top"

(* ---------------- Hop-count filter ---------------- *)

let test_hcf_filters_spoofed () =
  let lm, engine, net = fig2_net () in
  let hcf = B.Hop_count_filter.install net ~sw:lm.T.Fig2.agg ~tolerance:2 () in
  let normal = List.hd lm.T.Fig2.normal_sources in
  (* learning phase: legitimate traffic from [normal] *)
  ignore (Flow.Cbr.start net ~src:normal ~dst:lm.T.Fig2.victim ~rate_pps:50. ());
  Engine.run engine ~until:2.;
  B.Common.set_mode (Net.switch net lm.T.Fig2.agg) "hcf" true;
  (* a bot spoofing [normal]'s address with a wrong initial TTL *)
  let spoofed =
    Flow.Cbr.start net ~src:normal ~dst:lm.T.Fig2.victim ~rate_pps:50. ~ttl:32
      ~via:(List.hd lm.T.Fig2.bot_sources) ()
  in
  Engine.run engine ~until:4.;
  Alcotest.(check bool) "spoofed filtered" true (B.Hop_count_filter.filtered hcf > 50);
  Alcotest.(check bool) "spoofed delivery suppressed" true
    (Flow.Cbr.delivered_bytes spoofed < 30_000.);
  Alcotest.(check bool) "learned sources" true (B.Hop_count_filter.learned_sources hcf >= 1)

(* ---------------- Access control ---------------- *)

let test_acl_blocks_unapproved () =
  let lm, engine, net = fig2_net () in
  let acl = B.Access_control.install net ~sw:lm.T.Fig2.agg () in
  let src = List.hd lm.T.Fig2.normal_sources in
  B.Access_control.permit acl ~src ~dst:lm.T.Fig2.victim;
  B.Common.set_mode (Net.switch net lm.T.Fig2.agg) "acl" true;
  let allowed = Flow.Cbr.start net ~src ~dst:lm.T.Fig2.victim ~rate_pps:50. () in
  let blocked = Flow.Cbr.start net ~src ~dst:(List.hd lm.T.Fig2.decoys) ~rate_pps:50. () in
  Engine.run engine ~until:3.;
  Alcotest.(check bool) "allowed flows" true (Flow.Cbr.delivered_bytes allowed > 100_000.);
  Alcotest.(check (float 0.)) "blocked entirely" 0. (Flow.Cbr.delivered_bytes blocked);
  Alcotest.(check bool) "violations counted" true (B.Access_control.violations acl > 50);
  (* revoke works *)
  B.Access_control.revoke acl ~src ~dst:lm.T.Fig2.victim;
  Alcotest.(check bool) "revoked" false (B.Access_control.allowed acl ~src ~dst:lm.T.Fig2.victim)

(* ---------------- Global rate limit ---------------- *)

let test_grl_converges_to_limit () =
  let lm, engine, net = fig2_net () in
  let topo = lm.T.Fig2.topo in
  let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
  let grl = B.Global_rate_limit.install net ~participants:[ e1; e2 ] ~sync_period:0.2 () in
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "grl" true) [ e1; e2 ];
  (* one tenant entering at two different switches, 2 Mb/s each, 2 Mb/s cap *)
  let tenant = 1 in
  B.Global_rate_limit.set_limit grl ~tenant 2_000_000.;
  let senders = List.filteri (fun i _ -> i < 2) lm.T.Fig2.bot_sources in
  List.iter (fun src -> B.Global_rate_limit.assign grl ~src ~tenant) senders;
  let flows =
    List.map
      (fun src -> Flow.Cbr.start net ~src ~dst:lm.T.Fig2.victim ~rate_pps:250. ())
      senders
  in
  Engine.run engine ~until:10.;
  let delivered = List.fold_left (fun acc f -> acc +. Flow.Cbr.delivered_bytes f) 0. flows in
  let rate_bps = delivered *. 8. /. 10. in
  (* offered 4 Mb/s; policed near the 2 Mb/s global cap *)
  Alcotest.(check bool) "held near global limit" true
    (rate_bps < 2_600_000. && rate_bps > 1_200_000.);
  Alcotest.(check bool) "dropped some" true (B.Global_rate_limit.dropped grl > 100);
  Alcotest.(check bool) "synced" true (B.Global_rate_limit.sync_probes grl > 10);
  (* each participant's view includes the remote share *)
  Alcotest.(check bool) "global view at e1 exceeds local" true
    (B.Global_rate_limit.global_rate grl ~sw:e1 ~tenant
     > B.Global_rate_limit.local_rate grl ~sw:e1 ~tenant +. 100_000.)

let test_reroute_loop_free () =
  (* steer ALL data through the probe tables and verify with the packet
     tracer that no packet ever revisits a switch *)
  let lm, engine, net = fig2_net () in
  let _rr =
    B.Reroute.install net ~roots:[ lm.T.Fig2.victim ] ~probe_interval:0.05 ~reroute_all:true ()
  in
  List.iter (fun sw -> B.Common.set_mode (Net.switch net sw) "reroute" true) (Net.switch_ids net);
  (* congestion to force the probes onto changing paths *)
  List.iter
    (fun bot ->
      ignore (Flow.Cbr.start net ~src:bot ~dst:(List.hd lm.T.Fig2.decoys) ~rate_pps:150. ()))
    lm.T.Fig2.bot_sources;
  let f = Flow.Tcp.start net ~src:(List.hd lm.T.Fig2.normal_sources) ~dst:lm.T.Fig2.victim () in
  let events = Net.trace_flow net ~flow:(Flow.Tcp.flow_id f) in
  Engine.run engine ~until:5.;
  (* group switch arrivals by packet uid: each packet visits each switch
     at most once *)
  let visits = Hashtbl.create 1024 in
  List.iter
    (fun (e : Net.trace_event) ->
      match e.Net.kind with
      | Net.Switch_arrival ->
        let key = (e.Net.uid, e.Net.node) in
        Hashtbl.replace visits key (1 + (try Hashtbl.find visits key with Not_found -> 0))
      | _ -> ())
    !events;
  Hashtbl.iter
    (fun (uid, node) n ->
      if n > 1 then
        Alcotest.failf "packet %d visited switch %d %d times (forwarding loop)" uid node n)
    visits;
  Alcotest.(check bool) "traffic flowed" true (Flow.Tcp.delivered_bytes f > 100_000.)

(* ---------------- Slowpath ---------------- *)

let test_slowpath_latency_and_budget () =
  let lm, engine, net = fig2_net () in
  let handled = ref 0 in
  let sp =
    B.Slowpath.create net ~sw:lm.T.Fig2.agg ~latency:0.01 ~rate_limit:10.
      ~handler:(fun _ ->
        incr handled;
        B.Slowpath.Allow)
      ()
  in
  let verdicts = ref [] in
  let pkt = Ff_dataplane.Packet.make ~src:0 ~dst:1 ~flow:1 ~birth:0. () in
  (* one punt inside budget: verdict arrives after the PCIe-like latency *)
  Engine.schedule engine ~at:1. (fun () ->
      B.Slowpath.punt sp pkt ~on_verdict:(fun v ->
          verdicts := (Net.now net, v) :: !verdicts));
  Engine.run engine ~until:2.;
  (match !verdicts with
  | [ (at, B.Slowpath.Allow) ] -> Alcotest.(check (float 1e-6)) "latency applied" 1.01 at
  | _ -> Alcotest.fail "expected one Allow verdict");
  (* a burst beyond the 10/s budget overflows fail-closed *)
  Engine.schedule engine ~at:2.5 (fun () ->
      for _ = 1 to 50 do
        B.Slowpath.punt sp pkt ~on_verdict:(fun _ -> ())
      done);
  Engine.run engine ~until:4.;
  Alcotest.(check bool) "budget enforced" true (B.Slowpath.overflows sp > 30);
  Alcotest.(check bool) "some punts processed" true (B.Slowpath.punts sp >= 1)

let test_reactive_acl_flow_setup () =
  let lm, engine, net = fig2_net () in
  let sw = lm.T.Fig2.agg in
  let oracle_calls = ref 0 in
  let acl =
    B.Slowpath.Reactive_acl.install net ~sw ~latency:0.005
      ~oracle:(fun ~src:_ ~dst ->
        incr oracle_calls;
        dst = lm.T.Fig2.victim)
      ()
  in
  B.Common.set_mode (Net.switch net sw) "acl" true;
  let src = List.hd lm.T.Fig2.normal_sources in
  let allowed = Flow.Tcp.start net ~src ~dst:lm.T.Fig2.victim ~at:0.5 () in
  let denied = Flow.Cbr.start net ~src ~dst:(List.hd lm.T.Fig2.decoys) ~rate_pps:50. ~at:0.5 () in
  Engine.run engine ~until:5.;
  (* first packet punted, the rest ride the cache: oracle consulted once
     per pair, traffic flows at line rate afterwards *)
  Alcotest.(check int) "oracle once per pair" 2 !oracle_calls;
  Alcotest.(check bool) "allowed pair transfers" true (Flow.Tcp.delivered_bytes allowed > 1e6);
  Alcotest.(check (float 0.)) "denied pair blocked" 0. (Flow.Cbr.delivered_bytes denied);
  Alcotest.(check int) "two pairs cached" 2 (B.Slowpath.Reactive_acl.cached_pairs acl);
  Alcotest.(check bool) "fastpath dominates" true
    (B.Slowpath.Reactive_acl.cache_hits acl > 100 * B.Slowpath.Reactive_acl.cache_misses acl)

(* ---------------- Network-wide heavy hitter ---------------- *)

let test_nwhh_detects_distributed_flood () =
  let lm, engine, net = fig2_net () in
  let topo = lm.T.Fig2.topo in
  let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
  let alarms = ref [] in
  let nw =
    B.Network_wide_hh.install net ~ingresses:[ e1; e2 ] ~threshold_bps:6_000_000.
      ~on_alarm:(fun a -> alarms := a :: !alarms)
      ~on_clear:(fun _ -> ())
      ()
  in
  (* 8 bots at ~1 Mb/s each toward the victim: under 4 Mb/s at either
     ingress, 8 Mb/s network-wide *)
  List.iter
    (fun bot ->
      ignore (Flow.Cbr.start net ~src:bot ~dst:lm.T.Fig2.victim ~rate_pps:125. ()))
    lm.T.Fig2.bot_sources;
  Engine.run engine ~until:5.;
  (* locally invisible... *)
  Alcotest.(check bool) "local rate below threshold" true
    (B.Network_wide_hh.local_rate nw ~sw:e1 ~dst:lm.T.Fig2.victim < 6_000_000.);
  (* ...globally glaring *)
  Alcotest.(check bool) "global rate above threshold" true
    (B.Network_wide_hh.global_rate nw ~sw:e1 ~dst:lm.T.Fig2.victim > 6_000_000.);
  Alcotest.(check bool) "alarmed" true (B.Network_wide_hh.alarmed nw);
  Alcotest.(check bool) "victim among offenders" true
    (List.mem lm.T.Fig2.victim (B.Network_wide_hh.offenders nw));
  Alcotest.(check bool) "volumetric kind" true
    (match !alarms with
    | { B.Lfa_detector.attack; _ } :: _ -> attack = Packet.Volumetric
    | [] -> false);
  Alcotest.(check bool) "sync probes flowed" true (B.Network_wide_hh.sync_probes nw > 5)

let test_nwhh_quiet_under_local_threshold () =
  let lm, engine, net = fig2_net () in
  let topo = lm.T.Fig2.topo in
  let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
  let nw =
    B.Network_wide_hh.install net ~ingresses:[ e1; e2 ] ~threshold_bps:6_000_000.
      ~on_alarm:(fun _ -> ()) ~on_clear:(fun _ -> ()) ()
  in
  (* modest legitimate traffic only *)
  List.iter
    (fun n -> ignore (Flow.Cbr.start net ~src:n ~dst:lm.T.Fig2.victim ~rate_pps:60. ()))
    lm.T.Fig2.normal_sources;
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "no alarm" false (B.Network_wide_hh.alarmed nw);
  Alcotest.(check (list int)) "no offenders" [] (B.Network_wide_hh.offenders nw)

let test_nwhh_clears_after_flood () =
  let lm, engine, net = fig2_net () in
  let topo = lm.T.Fig2.topo in
  let e1 = (T.node_by_name topo "e1").T.id and e2 = (T.node_by_name topo "e2").T.id in
  let clears = ref 0 in
  let nw =
    B.Network_wide_hh.install net ~ingresses:[ e1; e2 ] ~threshold_bps:6_000_000.
      ~on_alarm:(fun _ -> ())
      ~on_clear:(fun _ -> incr clears)
      ()
  in
  List.iter
    (fun bot ->
      ignore (Flow.Cbr.start net ~src:bot ~dst:lm.T.Fig2.victim ~rate_pps:125. ~stop:4. ()))
    lm.T.Fig2.bot_sources;
  Engine.run engine ~until:10.;
  Alcotest.(check bool) "cleared after the flood ends" true (!clears >= 1);
  Alcotest.(check bool) "not alarmed at the end" false (B.Network_wide_hh.alarmed nw)

(* ---------------- Specs ---------------- *)

let test_specs_catalogue () =
  Alcotest.(check int) "eight boosters" 8 (List.length B.Specs.booster_names);
  List.iter
    (fun name ->
      let specs = B.Specs.specs_of name in
      Alcotest.(check bool) (name ^ " has >= 3 PPMs") true (List.length specs >= 3);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (name ^ "/" ^ s.Ff_dataplane.Ppm.name ^ " positive stages")
            true
            (s.Ff_dataplane.Ppm.resources.Ff_dataplane.Resource.stages > 0.))
        specs)
    B.Specs.booster_names;
  Alcotest.(check bool) "unknown booster raises" true
    (try
       ignore (B.Specs.specs_of "nope");
       false
     with Not_found -> true)

let () =
  Alcotest.run "ff_boosters"
    [
      ( "common",
        [
          Alcotest.test_case "mode vars" `Quick test_mode_vars;
          Alcotest.test_case "flag bit mirrors vars" `Quick test_mode_flag_mirror;
        ] );
      ( "lfa-detector",
        [
          Alcotest.test_case "alarms on flood" `Quick test_detector_alarms_on_flood;
          Alcotest.test_case "quiet without attack" `Quick test_detector_quiet_without_attack;
          Alcotest.test_case "classifies crossfire not normal" `Quick
            test_detector_classifies_crossfire_not_normal;
          Alcotest.test_case "clears when attack stops" `Quick
            test_detector_clears_when_attack_stops;
        ] );
      ( "reroute",
        [
          Alcotest.test_case "probes build tables" `Quick test_reroute_probes_build_tables;
          Alcotest.test_case "prefers uncongested" `Quick test_reroute_prefers_uncongested;
          Alcotest.test_case "steers marked packets" `Quick test_reroute_steers_marked_packets;
          Alcotest.test_case "loop free under rerouting" `Quick test_reroute_loop_free;
        ] );
      ( "obfuscator",
        [ Alcotest.test_case "rewrites traceroute" `Quick test_obfuscator_rewrites_traceroute ] );
      ( "dropper",
        [
          Alcotest.test_case "rate limits suspicious" `Quick test_dropper_rate_limits_suspicious;
          Alcotest.test_case "spares normal" `Quick test_dropper_spares_normal;
        ] );
      ( "heavy-hitter",
        [ Alcotest.test_case "detects volumetric" `Quick test_heavy_hitter_detects_volumetric ] );
      ( "hop-count-filter",
        [ Alcotest.test_case "filters spoofed" `Quick test_hcf_filters_spoofed ] );
      ( "access-control",
        [ Alcotest.test_case "blocks unapproved" `Quick test_acl_blocks_unapproved ] );
      ( "global-rate-limit",
        [ Alcotest.test_case "converges to limit" `Quick test_grl_converges_to_limit ] );
      ( "slowpath",
        [
          Alcotest.test_case "latency and budget" `Quick test_slowpath_latency_and_budget;
          Alcotest.test_case "reactive acl flow setup" `Quick test_reactive_acl_flow_setup;
        ] );
      ( "network-wide-hh",
        [
          Alcotest.test_case "detects distributed flood" `Quick
            test_nwhh_detects_distributed_flood;
          Alcotest.test_case "quiet under threshold" `Quick
            test_nwhh_quiet_under_local_threshold;
          Alcotest.test_case "clears after flood" `Quick test_nwhh_clears_after_flood;
        ] );
      ("specs", [ Alcotest.test_case "catalogue" `Quick test_specs_catalogue ]);
    ]
