(* Tests for the hybrid fluid/packet simulation tier: the max-min solver,
   analytic delivery, fluid<->packet coupling, demote/promote conservation,
   and the differential properties anchoring the hybrid engine to the pure
   packet engine. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Monitor = Ff_netsim.Monitor
module Fluid = Ff_fluid.Fluid
module Hybrid = Ff_fluid.Hybrid
module Scenario = Fastflex.Scenario
module Prng = Ff_util.Prng

let deep = match Sys.getenv_opt "DEEP" with Some ("1" | "true") -> true | _ -> false

let make_net topo =
  let engine = Engine.create () in
  let net = Net.create engine topo in
  Scenario.install_all_routes net;
  (engine, net)

(* dumbbell host ids: nodes are (left, right) switches then pairs of
   (sender, receiver) hosts, so sender i = 2 + 2i, receiver i = 3 + 2i *)
let db_src i = 2 + (2 * i)
let db_dst i = 3 + (2 * i)

(* ---------------- solver ---------------- *)

let test_solver_maxmin_dumbbell () =
  (* 3 constant classes over a 10 Mb/s bottleneck: demands 2, 8, 8 Mb/s.
     Max-min: the 2 Mb/s class is served in full, the rest split the
     remainder -> 4 Mb/s each. *)
  let topo = T.dumbbell ~pairs:3 ~bottleneck:10_000_000. () in
  let _, net = make_net topo in
  let fl = Fluid.create net () in
  let f1 = Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 2e6 }) in
  let f2 = Fluid.add fl ~src:(db_src 1) ~dst:(db_dst 1) (Fluid.Constant { rate = 8e6 }) in
  let f3 = Fluid.add fl ~src:(db_src 2) ~dst:(db_dst 2) (Fluid.Constant { rate = 8e6 }) in
  Fluid.recompute fl;
  Alcotest.(check (float 1.)) "small demand served" 2e6 (Fluid.rate f1);
  Alcotest.(check (float 1.)) "fair share 1" 4e6 (Fluid.rate f2);
  Alcotest.(check (float 1.)) "fair share 2" 4e6 (Fluid.rate f3);
  Alcotest.(check (float 1.)) "bottleneck load" 10e6 (Net.fluid_load net ~from_:0 ~to_:1);
  Alcotest.(check (float 0.001)) "utilization folds fluid" 1.
    (Net.utilization net ~from_:0 ~to_:1)

let test_solver_multi_member_class () =
  (* 5 flows of one class against 1 of another over the same bottleneck:
     per-flow max-min shares are equal, so the 5-member class gets 5x the
     aggregate of the single-member class. *)
  let topo = T.dumbbell ~pairs:2 ~bottleneck:6_000_000. () in
  let _, net = make_net topo in
  let fl = Fluid.create net () in
  let fives =
    List.init 5 (fun _ ->
        Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 5e6 }))
  in
  let one = Fluid.add fl ~src:(db_src 1) ~dst:(db_dst 1) (Fluid.Constant { rate = 5e6 }) in
  Fluid.recompute fl;
  List.iter
    (fun f -> Alcotest.(check (float 1.)) "per-flow share" 1e6 (Fluid.rate f))
    (one :: fives);
  Alcotest.(check int) "two classes" 2 (Fluid.classes fl)

let test_fluid_delivery () =
  (* analytic accrual: a single unconstrained 1 Mb/s flow delivers
     exactly rate x time (no packetization slack) *)
  let topo = T.dumbbell ~pairs:1 () in
  let engine, net = make_net topo in
  let fl = Fluid.create net () in
  let f = Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 1e6 }) in
  Engine.run engine ~until:8.;
  Alcotest.(check (float 1.)) "delivered = rate*t/8" 1e6 (Fluid.delivered_bytes fl f);
  Alcotest.(check (float 1.)) "population total" 1e6 (Fluid.total_delivered_bytes fl);
  Alcotest.(check (float 10.)) "hop bytes = delivered * 3 links" 3e6 (Fluid.hop_bytes fl);
  Alcotest.(check bool) "solver ran periodically" true (Fluid.rate_events fl > 10)

let test_fluid_displaces_packets () =
  (* a fluid flood near capacity squeezes the packet tier's transmit
     capacity down to the floor -> queue overflow drops *)
  let topo = T.dumbbell ~pairs:2 ~bottleneck:1_000_000. () in
  let engine, net = make_net topo in
  let fl = Fluid.create net () in
  let _flood =
    Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 5e6 })
  in
  let _cbr =
    Flow.Cbr.start net ~src:(db_src 1) ~dst:(db_dst 1) ~rate_pps:60. ~at:0.
      ~packet_size:1000 ()
  in
  Engine.run engine ~until:6.;
  Alcotest.(check bool) "bottleneck drops under fluid load" true
    (Net.link_drops net ~from_:0 ~to_:1 > 0);
  Alcotest.(check bool) "utilization saturated" true
    (Net.utilization net ~from_:0 ~to_:1 > 0.95)

let test_aimd_ramp () =
  (* an adaptive class alone on a big link ramps toward its window cap;
     a constant class arriving mid-run knocks its share down *)
  let topo = T.dumbbell ~pairs:2 ~bottleneck:10_000_000. () in
  let engine, net = make_net topo in
  let fl = Fluid.create net ~update_period:0.1 () in
  let f =
    Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0)
      (Fluid.Adaptive { rtt = 0.05; max_rate = 8e6 })
  in
  Engine.run engine ~until:4.;
  let ramped = Fluid.rate f in
  Alcotest.(check bool) "ramped up" true (ramped > 1e6);
  Alcotest.(check bool) "capped" true (ramped <= 8e6 +. 1.);
  let _squeeze =
    Fluid.add fl ~src:(db_src 1) ~dst:(db_dst 1) (Fluid.Constant { rate = 10e6 })
  in
  Engine.run engine ~until:8.;
  Alcotest.(check bool) "share under contention below solo ramp" true
    (Fluid.rate f < ramped)

(* ---------------- monitor probes (flow-kind-agnostic goodput) ------------ *)

let test_counter_probe () =
  let topo = T.dumbbell ~pairs:1 () in
  let engine, net = make_net topo in
  let fl = Fluid.create net () in
  let f = Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 8e5 }) in
  let series =
    Monitor.aggregate_goodput net
      ~probes:[ Monitor.counter_probe (fun () -> Fluid.delivered_bytes fl f) ]
      ~period:0.5 ~until:10. ~name:"fluid" ()
  in
  Engine.run engine ~until:10.;
  let pts = Ff_util.Series.points series in
  Alcotest.(check bool) "sampled" true (List.length pts > 10);
  (* steady state: every non-first sample sees 100 kB/s *)
  let _, last = List.nth pts (List.length pts - 1) in
  Alcotest.(check (float 100.)) "steady goodput" 1e5 last

let test_cbr_probe () =
  let topo = T.dumbbell ~pairs:1 () in
  let engine, net = make_net topo in
  let cbr =
    Flow.Cbr.start net ~src:(db_src 0) ~dst:(db_dst 0) ~rate_pps:100. ~at:0.
      ~packet_size:1000 ()
  in
  let series =
    Monitor.aggregate_goodput net ~probes:[ Monitor.cbr_probe cbr ] ~period:1.
      ~until:10. ~name:"cbr" ()
  in
  Engine.run engine ~until:10.;
  let pts = Ff_util.Series.points series in
  let _, last = List.nth pts (List.length pts - 1) in
  Alcotest.(check (float 5_000.)) "cbr goodput ~100 kB/s" 1e5 last

(* ---------------- hybrid demote/promote ---------------- *)

let test_demote_promote_conservation () =
  let topo = T.dumbbell ~pairs:1 () in
  let engine, net = make_net topo in
  let hy = Hybrid.create ~update_period:0.1 net () in
  let m =
    Hybrid.add_flow hy ~src:(db_src 0) ~dst:(db_dst 0)
      (Hybrid.Cbr { rate_pps = 100.; packet_size = 1000 })
  in
  (* node 0 (left switch) is on the path: hot during [2,4] and [6,8] *)
  List.iter
    (fun at -> Engine.schedule engine ~at (fun () -> Hybrid.mark_hot hy ~node:0))
    [ 2.; 6. ];
  List.iter
    (fun at -> Engine.schedule engine ~at (fun () -> Hybrid.clear_hot hy ~node:0))
    [ 4.; 8. ];
  Engine.run engine ~until:10.;
  Alcotest.(check int) "two demotions" 2 (Hybrid.demotions hy);
  Alcotest.(check int) "two promotions" 2 (Hybrid.promotions hy);
  Alcotest.(check bool) "ends promoted" true (not (Hybrid.is_demoted m));
  (* 100 kB/s x 10 s across four tier switches, conserved within a few
     packets of in-flight slack at each switchover *)
  let delivered = Hybrid.delivered_bytes hy m in
  Alcotest.(check bool)
    (Printf.sprintf "conserved across round-trips (got %.0f)" delivered)
    true
    (delivered > 0.97e6 && delivered < 1.01e6)

let test_hybrid_scenario_smoke () =
  let r =
    (* only 3 bot PoPs exist at cores:6, so each aggregate carries more
       volume to keep the flood above the 0.85 utilization threshold *)
    Scenario.run_lfa_fluid ~flows:2_000 ~duration:10. ~cores:6 ~attack_start:2.
      ~attack_stop:6. ~roll_at:4. ~flow_rate_bps:50_000.
      ~attack_bps_per_flow:150_000_000. ()
  in
  Alcotest.(check bool) "benign bytes delivered" true (r.Scenario.fr_delivered_bytes > 0.);
  Alcotest.(check bool) "modes fired" true (r.Scenario.fr_mode_changes > 0);
  Alcotest.(check bool) "flows demoted around the attack" true (r.Scenario.fr_demotions > 0);
  Alcotest.(check bool) "promoted back" true (r.Scenario.fr_promotions > 0);
  Alcotest.(check bool) "rolled" true (r.Scenario.fr_rolls = 1);
  Alcotest.(check bool) "fluid did the bulk of the work" true
    (r.Scenario.fr_fluid_hop_bytes /. 1000. > float_of_int r.Scenario.fr_packet_tx)

(* ---------------- incremental solver ---------------- *)

(* ring host ids: switches are 0..n-1, host i = n + i *)
let ring_host n i = n + i

let bits = Int64.bits_of_float

(* the bitwise comparison surface of one solver run: per-class (rate, cap)
   and the fluid load pushed onto every directed link *)
let solver_fingerprint net fl =
  let rates =
    List.map (fun (id, r, c) -> (id, bits r, bits c)) (Fluid.dump_rates fl)
  in
  let loads =
    List.init (Net.n_dirlinks net) (fun i ->
        let a, b = Net.link_ends_i net i in
        bits (Net.fluid_load net ~from_:a ~to_:b))
  in
  (rates, loads, bits (Fluid.total_delivered_bytes fl))

let test_solver_fallback () =
  (* full_frac = 0.: any dirtiness at all overruns the threshold, so every
     pass with work is a fallback full solve — and must still produce the
     standard max-min answer *)
  let topo = T.dumbbell ~pairs:3 ~bottleneck:10_000_000. () in
  let engine, net = make_net topo in
  let fl = Fluid.create net ~full_frac:0. () in
  let f1 = Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0) (Fluid.Constant { rate = 2e6 }) in
  let f2 = Fluid.add fl ~src:(db_src 1) ~dst:(db_dst 1) (Fluid.Constant { rate = 8e6 }) in
  let f3 = Fluid.add fl ~src:(db_src 2) ~dst:(db_dst 2) (Fluid.Constant { rate = 8e6 }) in
  Engine.run engine ~until:2.;
  Fluid.detach fl f3;
  Fluid.recompute fl;
  let st = Fluid.solver_stats fl in
  Alcotest.(check bool) "every working pass fell back" true
    (st.Fluid.full_solves > 0 && st.Fluid.full_solves = st.Fluid.solves);
  Alcotest.(check (float 1.)) "small demand served" 2e6 (Fluid.rate f1);
  Alcotest.(check (float 1.)) "survivor takes the freed share" 8e6 (Fluid.rate f2)

let test_solver_locality () =
  (* two contended bottlenecks on opposite sides of a ring: detaching a
     flow from one component must not touch the other's classes *)
  let n = 8 in
  let topo = T.ring ~n () in
  let engine, net = make_net topo in
  let fl = Fluid.create net () in
  let add s d = Fluid.add fl ~src:(ring_host n s) ~dst:(ring_host n d)
      (Fluid.Constant { rate = 8e6 })
  in
  (* 16 Mb/s demand against the 10 Mb/s s0->s1 link, and again at s4->s5 *)
  let a1 = add 0 1 and a2 = add 0 1 in
  let b1 = add 4 5 and b2 = add 4 5 in
  ignore a2;
  Engine.run engine ~until:1.;
  let st1 = Fluid.solver_stats fl in
  let rate_b1 = bits (Fluid.rate b1) and rate_b2 = bits (Fluid.rate b2) in
  Fluid.detach fl a1;
  Fluid.recompute fl;
  let st2 = Fluid.solver_stats fl in
  let touched = st2.Fluid.touched_classes - st1.Fluid.touched_classes in
  let seen = st2.Fluid.seen_classes - st1.Fluid.seen_classes in
  Alcotest.(check bool)
    (Printf.sprintf "re-solve stayed in one component (touched %d of %d)" touched seen)
    true (touched < seen);
  Alcotest.(check bool) "no fallback" true
    (st2.Fluid.full_solves = st1.Fluid.full_solves);
  Alcotest.(check bool) "other component's rates untouched bitwise" true
    (bits (Fluid.rate b1) = rate_b1 && bits (Fluid.rate b2) = rate_b2)

let test_solver_clear_rerun () =
  (* Fluid.clear + Engine.clear reuse the dense scratch: a second identical
     run on the same instances reproduces the first bit-for-bit *)
  let topo = T.dumbbell ~pairs:3 ~bottleneck:10_000_000. () in
  let engine, net = make_net topo in
  let fl = Fluid.create net ~update_period:0.1 () in
  let run_once () =
    let f1 =
      Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0)
        (Fluid.Adaptive { rtt = 0.04; max_rate = 6e6 })
    in
    let _f2 =
      Fluid.add fl ~src:(db_src 1) ~dst:(db_dst 1) (Fluid.Constant { rate = 8e6 })
    in
    Engine.run engine ~until:2.;
    Fluid.detach fl f1;
    Engine.run engine ~until:4.;
    solver_fingerprint net fl
  in
  let fp1 = run_once () in
  Engine.clear engine;
  Fluid.clear fl;
  Alcotest.(check int) "population dropped" 0 (Fluid.classes fl);
  let fp2 = run_once () in
  Alcotest.(check bool) "re-run after clear is bit-identical" true (fp1 = fp2)

let test_loss_coupling_cuts () =
  (* a packet-tier flood overflows the bottleneck queue; with loss coupling
     installed the drops must cut the adaptive fluid class's cap *)
  let topo = T.dumbbell ~pairs:2 ~bottleneck:1_000_000. () in
  let engine, net = make_net topo in
  let fl = Fluid.create net ~update_period:0.05 () in
  Fluid.enable_loss_coupling fl;
  let f =
    Fluid.add fl ~src:(db_src 0) ~dst:(db_dst 0)
      (Fluid.Adaptive { rtt = 0.05; max_rate = 4e6 })
  in
  Engine.run engine ~until:2.;
  let ramped_cap = Fluid.cap f in
  let _flood =
    Flow.Cbr.start net ~src:(db_src 1) ~dst:(db_dst 1) ~rate_pps:400. ~at:2.
      ~packet_size:1000 ()
  in
  Engine.run engine ~until:6.;
  Alcotest.(check bool) "queue overflowed" true (Net.link_drops net ~from_:0 ~to_:1 > 0);
  let st = Fluid.solver_stats fl in
  Alcotest.(check bool) "drops cut the aimd cap" true (st.Fluid.loss_cuts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "cap fell below the pre-flood ramp (%.0f vs %.0f)" (Fluid.cap f)
       ramped_cap)
    true
    (Fluid.cap f < ramped_cap)

(* random op sequence for the incremental≡full differential: fluid flows
   (constant and adaptive) arriving over time, some detached mid-run and
   some re-attached, plus packet CBR cross-traffic so link drift and loss
   coupling fire. Both solver modes replay the identical sequence on
   identical nets; every rate, cap and pushed link load must match
   bitwise at the end. *)
let gen_solver_workload =
  QCheck2.Gen.(
    let* n = int_range 4 8 in
    let* flows = int_range 2 12 in
    let* specs =
      list_size (return flows)
        (let* si = int_range 0 (n - 1) in
         let* d_off = int_range 1 (n - 1) in
         let* mbps = int_range 1 12 in
         let* adaptive = bool in
         let* at = int_range 0 20 in
         let* detach_at = int_range 0 40 in
         let* reattach = bool in
         return
           ( si, (si + d_off) mod n, float_of_int mbps *. 1e6, adaptive,
             float_of_int at /. 10.,
             (* detach in [2,6) when the slot is live, maybe re-attach 1s later *)
             (if detach_at >= 20 then Some (float_of_int detach_at /. 10.) else None),
             reattach ))
    in
    let* cbrs = int_range 0 3 in
    let* cbr_specs =
      list_size (return cbrs)
        (let* si = int_range 0 (n - 1) in
         let* d_off = int_range 1 (n - 1) in
         let* rate = int_range 50 400 in
         return (si, (si + d_off) mod n, float_of_int rate))
    in
    return (n, specs, cbr_specs))

let run_solver_mode ~solver (n, specs, cbr_specs) =
  let engine, net = make_net (T.ring ~n ()) in
  let fl = Fluid.create net ~update_period:0.25 ~solver () in
  Fluid.enable_loss_coupling fl;
  List.iter
    (fun (s, d, bps, adaptive, at, detach, reattach) ->
      let s = ring_host n s and d = ring_host n d in
      if s <> d then
        Engine.schedule engine ~at (fun () ->
            let f =
              Fluid.add fl ~src:s ~dst:d
                (if adaptive then Fluid.Adaptive { rtt = 0.04; max_rate = bps }
                 else Fluid.Constant { rate = bps })
            in
            match detach with
            | Some dt ->
              Engine.schedule engine ~at:dt (fun () ->
                  Fluid.detach fl f;
                  Fluid.recompute fl;
                  if reattach then
                    Engine.schedule engine ~at:(dt +. 1.) (fun () ->
                        Fluid.attach fl f;
                        Fluid.recompute fl))
            | None -> ()))
    specs;
  List.iter
    (fun (s, d, rate_pps) ->
      let s = ring_host n s and d = ring_host n d in
      if s <> d then
        ignore (Flow.Cbr.start net ~src:s ~dst:d ~rate_pps ~at:1.5 ~packet_size:800 ()))
    cbr_specs;
  Engine.run engine ~until:7.;
  let fp = solver_fingerprint net fl in
  let st = Fluid.solver_stats fl in
  (fp, st)

let print_solver_workload (n, specs, cbrs) =
  Printf.sprintf "ring %d; flows [%s]; cbrs [%s]" n
    (String.concat "; "
       (List.map
          (fun (s, d, bps, ad, at, det, re) ->
            Printf.sprintf "%d->%d %.0fbps %s at %.1f det %s re %b" s d bps
              (if ad then "adp" else "cst") at
              (match det with Some x -> Printf.sprintf "%.1f" x | None -> "-")
              re)
          specs))
    (String.concat "; "
       (List.map (fun (s, d, r) -> Printf.sprintf "%d->%d %.0fpps" s d r) cbrs))

let prop_incremental_matches_full =
  QCheck2.Test.make ~count:(if deep then 150 else 30)
    ~print:print_solver_workload
    ~name:"incremental solver is bit-identical to always-full"
    gen_solver_workload (fun w ->
      let fp_inc, st_inc = run_solver_mode ~solver:Fluid.Incremental w in
      let fp_full, st_full = run_solver_mode ~solver:Fluid.Always_full w in
      (* same rates, caps, link loads and accruals, bit for bit — while the
         incremental side did no more (usually far less) assignment work *)
      fp_inc = fp_full
      && st_inc.Fluid.touched_classes <= st_full.Fluid.touched_classes)

(* ---------------- differential properties ---------------- *)

(* random multi-flow workload on a ring: (src, dst, rate_pps, start) *)
let gen_workload =
  QCheck2.Gen.(
    let* n = int_range 3 6 in
    let* flows = int_range 1 10 in
    let* specs =
      list_size (return flows)
        (let* si = int_range 0 (n - 1) in
         let* d_off = int_range 1 (n - 1) in
         let* rate = int_range 5 40 in
         let* at = int_range 0 20 in
         return (si, (si + d_off) mod n, float_of_int rate, float_of_int at /. 10.))
    in
    return (n, specs))

let run_pure_packet (n, specs) =
  let engine, net = make_net (T.ring ~n ()) in
  let flows =
    List.map
      (fun (s, d, rate_pps, at) ->
        Flow.Cbr.start net ~src:(ring_host n s) ~dst:(ring_host n d) ~rate_pps ~at
          ~packet_size:600 ())
      specs
  in
  Engine.run engine ~until:6.;
  ( List.map Flow.Cbr.delivered_bytes flows,
    Net.total_tx_packets net,
    List.sort compare (Net.drops_by_reason net),
    Engine.steps engine )

let prop_force_packet_bit_identical =
  QCheck2.Test.make ~count:(if deep then 200 else 40)
    ~name:"hybrid(All_packet) is bit-identical to the pure packet engine"
    gen_workload (fun ((n, specs) as w) ->
      let d1, tx1, drops1, steps1 = run_pure_packet w in
      let engine, net = make_net (T.ring ~n ()) in
      let hy = Hybrid.create ~force:Hybrid.All_packet net () in
      let members =
        List.map
          (fun (s, d, rate_pps, at) ->
            Hybrid.add_flow hy ~src:(ring_host n s) ~dst:(ring_host n d) ~at
              (Hybrid.Cbr { rate_pps; packet_size = 600 }))
          specs
      in
      (* a hot-region source must be inert under All_packet forcing *)
      Hybrid.mark_hot hy ~node:0;
      Engine.run engine ~until:6.;
      let d2 = List.map (Hybrid.delivered_bytes hy) members in
      d1 = d2
      && tx1 = Net.total_tx_packets net
      && drops1 = List.sort compare (Net.drops_by_reason net)
      && steps1 = Engine.steps engine
      && Hybrid.demoted_count hy = 0)

let prop_fluid_matches_packet_aggregate =
  QCheck2.Test.make ~count:(if deep then 100 else 25)
    ~name:"all-fluid aggregate delivery within 15% of all-packet (uncongested)"
    gen_workload (fun (n, specs) ->
      (* keep each link uncongested: ring links are 10 Mb/s and worst-case
         overlap is all flows on one link; 10 flows x 40 pps x 600 B
         = 1.9 Mb/s << capacity, so both tiers deliver the offered load *)
      let d_packet, _, _, _ = run_pure_packet (n, specs) in
      let engine, net = make_net (T.ring ~n ()) in
      let hy = Hybrid.create ~force:Hybrid.All_fluid ~update_period:0.1 net () in
      let members =
        List.map
          (fun (s, d, rate_pps, at) ->
            Hybrid.add_flow hy ~src:(ring_host n s) ~dst:(ring_host n d) ~at
              (Hybrid.Cbr { rate_pps; packet_size = 600 }))
          specs
      in
      Engine.run engine ~until:6.;
      let sum = List.fold_left ( +. ) 0. in
      let p = sum d_packet in
      let f = sum (List.map (Hybrid.delivered_bytes hy) members) in
      let tol = Float.max (0.15 *. p) 5_000. in
      Float.abs (p -. f) <= tol)

let prop_roundtrip_conserves_delivery =
  QCheck2.Test.make ~count:(if deep then 100 else 25)
    ~name:"demote/promote round-trips conserve delivered bytes (within slack)"
    QCheck2.Gen.(
      let* w = gen_workload in
      let* toggles = int_range 1 4 in
      return (w, toggles))
    (fun (((n, specs) as w), toggles) ->
      (* baseline: all-fluid, no tier churn *)
      let engine0, net0 = make_net (T.ring ~n ()) in
      let hy0 = Hybrid.create ~force:Hybrid.All_fluid ~update_period:0.1 net0 () in
      let ms0 =
        List.map
          (fun (s, d, rate_pps, at) ->
            Hybrid.add_flow hy0 ~src:(ring_host n s) ~dst:(ring_host n d) ~at
              (Hybrid.Cbr { rate_pps; packet_size = 600 }))
          specs
      in
      Engine.run engine0 ~until:8.;
      let base =
        List.fold_left (fun a m -> a +. Hybrid.delivered_bytes hy0 m) 0. ms0
      in
      (* same workload with every switch toggling hot/cold: every flow is
         demoted and promoted [toggles] times *)
      let engine, net = make_net (T.ring ~n ()) in
      let hy = Hybrid.create ~update_period:0.1 net () in
      let ms =
        List.map
          (fun (s, d, rate_pps, at) ->
            Hybrid.add_flow hy ~src:(ring_host n s) ~dst:(ring_host n d) ~at
              (Hybrid.Cbr { rate_pps; packet_size = 600 }))
          specs
      in
      for k = 0 to toggles - 1 do
        let at = 2.5 +. float_of_int k in
        Engine.schedule engine ~at (fun () ->
            for sw = 0 to n - 1 do
              Hybrid.mark_hot hy ~node:sw
            done);
        Engine.schedule engine ~at:(at +. 0.5) (fun () ->
            for sw = 0 to n - 1 do
              Hybrid.clear_hot hy ~node:sw
            done)
      done;
      Engine.run engine ~until:8.;
      let got = List.fold_left (fun a m -> a +. Hybrid.delivered_bytes hy m) 0. ms in
      ignore w;
      Hybrid.promotions hy >= List.length specs
      (* each switchover can strand at most ~an RTT of in-flight bytes;
         CBR rates here bound that well under 10% of total *)
      && Float.abs (got -. base) <= Float.max (0.12 *. base) 10_000.)

let () =
  Alcotest.run "fluid"
    [
      ( "solver",
        [
          Alcotest.test_case "maxmin dumbbell" `Quick test_solver_maxmin_dumbbell;
          Alcotest.test_case "multi-member class" `Quick test_solver_multi_member_class;
          Alcotest.test_case "analytic delivery" `Quick test_fluid_delivery;
          Alcotest.test_case "fluid displaces packets" `Quick test_fluid_displaces_packets;
          Alcotest.test_case "aimd ramp" `Quick test_aimd_ramp;
        ] );
      ( "probes",
        [
          Alcotest.test_case "counter probe" `Quick test_counter_probe;
          Alcotest.test_case "cbr probe" `Quick test_cbr_probe;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "demote/promote conservation" `Quick
            test_demote_promote_conservation;
          Alcotest.test_case "isp scenario smoke" `Quick test_hybrid_scenario_smoke;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "full-solve fallback" `Quick test_solver_fallback;
          Alcotest.test_case "component locality" `Quick test_solver_locality;
          Alcotest.test_case "clear + re-run reuses scratch" `Quick
            test_solver_clear_rerun;
          Alcotest.test_case "loss-coupled aimd cuts" `Quick test_loss_coupling_cuts;
        ] );
      ( "differential",
        [
          Test_seed.to_alcotest prop_incremental_matches_full;
          Test_seed.to_alcotest prop_force_packet_bit_identical;
          Test_seed.to_alcotest prop_fluid_matches_packet_aggregate;
          Test_seed.to_alcotest prop_roundtrip_conserves_delivery;
        ] );
    ]
