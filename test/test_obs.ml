(* Tests for Ff_obs: event trace, metrics registry, profiler, and the
   telemetry hooks wired through the simulator and defense subsystems. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Packet = Ff_dataplane.Packet
module Sketch = Ff_dataplane.Sketch
module Protocol = Ff_modes.Protocol
module Transfer = Ff_scaling.Transfer
module Event = Ff_obs.Event
module Trace = Ff_obs.Trace
module Metrics = Ff_obs.Metrics
module Profile = Ff_obs.Profile

(* ---------------- Trace ---------------- *)

let test_trace_emit_and_counts () =
  let tr = Trace.create () in
  Trace.emit tr ~time:0.5 (Event.Drop { node = 1; reason = "ttl-expired" });
  Trace.emit tr ~time:0.7 (Event.Probe { sw = 2; kind = "mode" });
  Trace.emit tr ~time:0.9 (Event.Drop { node = 3; reason = "no-route" });
  Alcotest.(check int) "length" 3 (Trace.length tr);
  Alcotest.(check int) "count" 3 (Trace.count tr);
  Alcotest.(check int) "drop count" 2 (Trace.count_kind tr "drop");
  Alcotest.(check int) "probe count" 1 (Trace.count_kind tr "probe");
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr)

let test_trace_capacity_bounded () =
  let tr = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.emit tr ~time:(float_of_int i) (Event.Drop { node = i; reason = "x" })
  done;
  Alcotest.(check int) "buffer capped" 10 (Trace.length tr);
  Alcotest.(check int) "total count survives" 25 (Trace.count tr);
  Alcotest.(check int) "dropped counted" 15 (Trace.dropped tr);
  Alcotest.(check int) "per-kind count survives" 25 (Trace.count_kind tr "drop")

let test_trace_rebase_across_runs () =
  (* two simulation runs share one trace; the second engine restarts at
     t=0 but stamped times must stay monotone *)
  let tr = Trace.create () in
  Trace.emit tr ~time:1.0 (Event.Probe { sw = 0; kind = "mode" });
  Trace.emit tr ~time:9.0 (Event.Probe { sw = 0; kind = "mode" });
  Trace.emit tr ~time:0.5 (Event.Probe { sw = 0; kind = "mode" });
  Trace.emit tr ~time:2.0 (Event.Probe { sw = 0; kind = "mode" });
  let times = List.map (fun (e : Trace.entry) -> e.Trace.time) (Trace.events tr) in
  Alcotest.(check (list (float 1e-9))) "rebased" [ 1.0; 9.0; 9.5; 11.0 ] times;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone times)

let test_trace_sink_sees_overflow () =
  let tr = Trace.create ~capacity:2 () in
  let seen = ref 0 in
  Trace.on_event tr (fun _ -> incr seen);
  for i = 1 to 5 do
    Trace.emit tr ~time:(float_of_int i) (Event.Drop { node = 0; reason = "x" })
  done;
  Alcotest.(check int) "sink called past capacity" 5 !seen

let test_trace_json_shape () =
  let tr = Trace.create () in
  Trace.emit tr ~time:1.25
    (Event.Mode_transition { sw = 3; attack = "lfa"; activated = true });
  Trace.emit tr ~time:2.5
    (Event.State_transfer
       { xfer_id = 7; src = 2; dst = 5; phase = Event.Xfer_start; chunks = 0 });
  match Trace.events tr with
  | [ a; b ] ->
    let ja = Trace.entry_to_json a and jb = Trace.entry_to_json b in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun (json, frag) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s contains %s" json frag)
          true (contains json frag))
      [ (ja, "\"event\": \"mode_transition\""); (ja, "\"sw\": 3");
        (ja, "\"attack\": \"lfa\""); (ja, "\"activated\": true");
        (jb, "\"event\": \"state_transfer\""); (jb, "\"phase\": \"start\"");
        (jb, "\"xfer_id\": 7") ]
  | _ -> Alcotest.fail "expected two entries"

let test_trace_jsonl_file_roundtrip () =
  let tr = Trace.create () in
  Trace.emit tr ~time:0.1 (Event.Reroute { sw = 1; dst = 9; next_hop = 4 });
  Trace.emit tr ~time:0.2 (Event.Fec_recovery { xfer_id = 1; group = 0 });
  let path = Filename.temp_file "ff_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_jsonl tr path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "one line per event" 2 (List.length !lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a json object" true
            (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        !lines)

let test_event_kind_labels () =
  Alcotest.(check string) "mode" "mode_transition"
    (Event.kind (Event.Mode_transition { sw = 0; attack = "lfa"; activated = false }));
  Alcotest.(check string) "xfer" "state_transfer"
    (Event.kind
       (Event.State_transfer
          { xfer_id = 0; src = 0; dst = 0; phase = Event.Xfer_complete; chunks = 0 }));
  Alcotest.(check string) "fec" "fec_recovery"
    (Event.kind (Event.Fec_recovery { xfer_id = 0; group = 0 }));
  Alcotest.(check string) "reroute" "reroute"
    (Event.kind (Event.Reroute { sw = 0; dst = 0; next_hop = 0 }))

let test_ambient_restored () =
  let outer = Trace.create () and inner = Trace.create () in
  Trace.set_ambient (Some outer);
  let is tr = match Trace.ambient () with Some t -> t == tr | None -> false in
  Trace.with_ambient inner (fun () ->
      Alcotest.(check bool) "inner ambient" true (is inner));
  Alcotest.(check bool) "outer restored" true (is outer);
  Trace.set_ambient None

(* ---------------- Metrics ---------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~scope:(Metrics.Switch 2) "drops" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4.;
  Alcotest.(check (float 1e-9)) "value" 5. (Metrics.Counter.value c);
  Alcotest.(check (float 1e-9)) "lookup by name+scope" 5.
    (Metrics.counter_value m ~scope:(Metrics.Switch 2) "drops");
  Alcotest.(check (float 1e-9)) "other scope empty" 0.
    (Metrics.counter_value m ~scope:(Metrics.Switch 3) "drops");
  Metrics.Counter.incr (Metrics.counter m ~scope:(Metrics.Switch 3) "drops");
  Alcotest.(check (float 1e-9)) "sum over scopes" 6. (Metrics.sum_counters m "drops")

let test_metrics_histogram_window () =
  let m = Metrics.create ~hist_window:10. () in
  let h = Metrics.histogram m ~scope:(Metrics.Link (0, 1)) "latency" in
  Metrics.Histogram.observe h ~now:0. 1.;
  Metrics.Histogram.observe h ~now:5. 2.;
  Metrics.Histogram.observe h ~now:12. 3.;
  (* at t=12 the sample from t=0 has aged out of the 10 s window *)
  Alcotest.(check int) "windowed count" 2 (Metrics.Histogram.count h ~now:12.);
  Alcotest.(check (float 1e-9)) "windowed mean" 2.5 (Metrics.Histogram.mean h ~now:12.)

let test_metrics_csv () =
  let m = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter m "events");
  Metrics.Gauge.set (Metrics.gauge m ~scope:(Metrics.Switch 1) "queue") 7.;
  let rows = Metrics.rows m ~now:0. in
  Alcotest.(check bool) "two rows" true (List.length rows = 2);
  List.iter
    (fun row -> Alcotest.(check int) "4 columns" 4 (List.length row))
    rows

(* ---------------- Profiler ---------------- *)

let test_profile_counts_events () =
  let span = Profile.start ~events:100 ~trace_events:10 "unit" in
  let r = Profile.finish span ~events:350 ~trace_events:25 () in
  Alcotest.(check int) "events delta" 250 r.Profile.events;
  Alcotest.(check int) "trace delta" 15 r.Profile.trace_events;
  Alcotest.(check bool) "rate positive" true (r.Profile.events_per_s > 0.)

(* ---------------- Hooks through the simulator ---------------- *)

let modes_for = function
  | Packet.Lfa -> [ "reroute" ]
  | Packet.Volumetric -> [ "drop" ]
  | Packet.Pulsing -> [ "reroute" ]
  | Packet.Recon -> [ "obfuscate" ]
  | Packet.Synflood -> [ "syn_guard" ]

let test_mode_transitions_traced () =
  let tr = Trace.create () in
  Trace.with_ambient tr (fun () ->
      let topo = T.ring ~n:4 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let p = Protocol.create net ~modes_for () in
      Protocol.raise_alarm p ~sw:0 Packet.Lfa;
      Engine.run engine ~until:1.);
  Alcotest.(check int) "one transition per switch" 4
    (Trace.count_kind tr "mode_transition");
  Alcotest.(check bool) "mode probes traced" true (Trace.count_kind tr "probe" > 0)

let test_state_transfer_traced () =
  let tr = Trace.create () in
  Trace.with_ambient tr (fun () ->
      let topo = T.linear ~n:4 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      let s0 = (T.node_by_name topo "s0").T.id in
      let s3 = (T.node_by_name topo "s3").T.id in
      let e = List.init 20 (fun i -> (Printf.sprintf "reg[%d]" i, float_of_int i)) in
      let x = Transfer.send net ~src_sw:s0 ~dst_sw:s3 ~entries:e
          ~on_complete:(fun _ -> ()) () in
      Engine.run engine ~until:2.;
      Alcotest.(check bool) "complete" true (Transfer.complete x));
  Alcotest.(check bool) "start + complete traced" true
    (Trace.count_kind tr "state_transfer" >= 2)

let test_sketch_transfer_preserves_total () =
  (* regression for the absorb total-inflation bug, end to end through the
     in-band transfer path *)
  let topo = T.linear ~n:4 () in
  let engine = Engine.create () in
  let net = Net.create engine topo in
  let s0 = (T.node_by_name topo "s0").T.id in
  let s3 = (T.node_by_name topo "s3").T.id in
  let src = Sketch.create ~rows:3 ~cols:64 () in
  let dst = Sketch.create ~rows:3 ~cols:64 () in
  for key = 0 to 30 do
    Sketch.add src key (float_of_int (key + 1))
  done;
  let x = Transfer.send_sketch net ~src_sw:s0 ~dst_sw:s3 ~sketch:src ~into:dst () in
  Engine.run engine ~until:5.;
  Alcotest.(check bool) "transfer complete" true (Transfer.complete x);
  Alcotest.(check (float 1e-9)) "total preserved exactly" (Sketch.total src)
    (Sketch.total dst);
  for key = 0 to 30 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "estimate for key %d" key)
      (Sketch.estimate src key) (Sketch.estimate dst key)
  done

let test_net_drop_counter () =
  let m = Metrics.create () in
  let tr = Trace.create () in
  Trace.with_ambient tr (fun () ->
      let topo = T.linear ~n:2 () in
      let engine = Engine.create () in
      let net = Net.create engine topo in
      Net.attach_metrics net (Some m);
      (* packet to an unroutable destination gets dropped and counted *)
      let sw = List.hd (Net.switch_ids net) in
      let pkt = Packet.make ~src:999 ~dst:998 ~flow:1 ~birth:0. () in
      Net.inject_at_switch net ~sw pkt;
      Engine.run engine ~until:1.);
  Alcotest.(check bool) "drop traced" true (Trace.count_kind tr "drop" > 0);
  Alcotest.(check bool) "drop counted" true (Metrics.sum_counters m "drops" > 0.)

let () =
  Alcotest.run "ff_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "emit and counts" `Quick test_trace_emit_and_counts;
          Alcotest.test_case "capacity bounded" `Quick test_trace_capacity_bounded;
          Alcotest.test_case "rebase across runs" `Quick test_trace_rebase_across_runs;
          Alcotest.test_case "sink sees overflow" `Quick test_trace_sink_sees_overflow;
          Alcotest.test_case "json shape" `Quick test_trace_json_shape;
          Alcotest.test_case "jsonl file" `Quick test_trace_jsonl_file_roundtrip;
          Alcotest.test_case "event kinds" `Quick test_event_kind_labels;
          Alcotest.test_case "ambient restored" `Quick test_ambient_restored;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram window" `Quick test_metrics_histogram_window;
          Alcotest.test_case "csv rows" `Quick test_metrics_csv;
        ] );
      ( "profile",
        [ Alcotest.test_case "event deltas" `Quick test_profile_counts_events ] );
      ( "hooks",
        [
          Alcotest.test_case "mode transitions traced" `Quick test_mode_transitions_traced;
          Alcotest.test_case "state transfer traced" `Quick test_state_transfer_traced;
          Alcotest.test_case "sketch transfer total" `Quick
            test_sketch_transfer_preserves_total;
          Alcotest.test_case "net drop counter" `Quick test_net_drop_counter;
        ] );
    ]
