(* Tests for the closed-loop adaptive-adversary arena: seeded
   determinism of the full attacker-vs-defense runs, the offered-load
   hysteresis flap regression, exact-totals hash rotation, and the
   strategic chaos hook. *)

module T = Ff_topology.Topology
module Engine = Ff_netsim.Engine
module Net = Ff_netsim.Net
module Flow = Ff_netsim.Flow
module Hashpipe = Ff_dataplane.Hashpipe
module B = Ff_boosters
module Scenario = Fastflex.Scenario
module Adaptive = Ff_attacks.Adaptive

(* ---------------- seeded determinism ---------------- *)

(* The whole adversarial arena — attacker decisions, defense draws,
   damage integral — must replay bit-for-bit from the seed. Float
   results are compared by bit pattern, not tolerance. *)
let check_replay ~strategy ~hardened () =
  let run () =
    Scenario.run_adversarial ~strategy ~adversary:Scenario.Closed_loop ~hardened ~seed:5
      ~duration:30. ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "fingerprint" a.Scenario.ar_fingerprint b.Scenario.ar_fingerprint;
  Alcotest.(check int) "probes" a.Scenario.ar_probes b.Scenario.ar_probes;
  Alcotest.(check int) "drops" a.Scenario.ar_drops b.Scenario.ar_drops;
  Alcotest.(check int64) "damage bits"
    (Int64.bits_of_float a.Scenario.ar_damage)
    (Int64.bits_of_float b.Scenario.ar_damage);
  Alcotest.(check int64) "work-factor bits"
    (Int64.bits_of_float a.Scenario.ar_work_factor)
    (Int64.bits_of_float b.Scenario.ar_work_factor)

let test_replay_collision_probe () =
  check_replay ~strategy:Adaptive.Collision_probe ~hardened:false ()

let test_replay_epoch_time_hardened () =
  check_replay ~strategy:Adaptive.Epoch_time ~hardened:true ()

(* ---------------- offered-load hysteresis flap regression -------- *)

(* A demand oscillating +-1% around the alarm threshold must produce at
   most one alarm and no clears: the alarm rises on the first upward
   crossing, and clearing requires the *offered* load to subside below
   the low threshold (high - 0.05), which a 1% dip never reaches. A
   detector without hysteresis (or one clearing on transmitted
   utilization once mitigation sheds load) flaps an alarm/clear pair on
   every crossing. *)
let test_hysteresis_no_flap () =
  let lm = T.Fig2.build ~bots:8 ~normals:4 () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  let hosts = T.hosts lm.T.Fig2.topo in
  List.iter
    (fun (h1 : T.node) ->
      List.iter
        (fun (h2 : T.node) ->
          if h1.T.id <> h2.T.id then
            match T.shortest_path lm.T.Fig2.topo ~src:h1.T.id ~dst:h2.T.id with
            | Some p -> Net.install_path net ~dst:h2.T.id p
            | None -> ())
        hosts)
    hosts;
  let watched =
    List.map
      (fun (l : T.link) ->
        if l.T.a = lm.T.Fig2.agg then (l.T.a, l.T.b) else (l.T.b, l.T.a))
      lm.T.Fig2.critical
  in
  let alarms = ref 0 and clears = ref 0 in
  let (_ : B.Lfa_detector.t) =
    B.Lfa_detector.install net ~sw:lm.T.Fig2.agg ~watched
      ~on_alarm:(fun _ -> incr alarms)
      ~on_clear:(fun _ -> incr clears)
      ()
  in
  let bot = List.hd lm.T.Fig2.bot_sources in
  let decoy = List.hd lm.T.Fig2.decoys in
  (* 10 Mb/s critical link: 8.4 Mb/s steady + a 0.2 Mb/s square wave
     oscillates the load 0.84 <-> 0.86 across the 0.85 threshold every
     second for ten seconds *)
  ignore (Flow.Cbr.start net ~src:bot ~dst:decoy ~rate_pps:1050. ~at:0.1 ());
  ignore
    (Flow.Cbr.start net ~src:bot ~dst:decoy ~rate_pps:25. ~at:0.1 ~pulse_period:1.0
       ~pulse_duty:0.5 ());
  Engine.run engine ~until:12.;
  Alcotest.(check int) "one alarm" 1 !alarms;
  Alcotest.(check int) "no clears" 0 !clears

(* ---------------- hash rotation preserves totals ---------------- *)

(* Re-salting the HashPipe mid-epoch must not disturb the resident
   accounting: the full-scan views (heavy_hitters, resident_keys) must
   be exactly identical across a reseed, whatever was inserted before
   it. (Only [count]'s point probe may miss, which is why the booster
   rotates at epoch boundaries.) *)
let rotation_totals_exact =
  QCheck2.Test.make ~count:200 ~name:"hashpipe reseed preserves resident totals"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 300) (pair (int_range 0 50) (int_range 1 10)))
        small_int small_int)
    (fun (updates, pipe_seed, new_salt) ->
      let pipe = Hashpipe.create ~seed:pipe_seed ~stages:2 ~slots_per_stage:8 () in
      List.iter
        (fun (key, w) -> Hashpipe.update pipe ~key ~weight:(float_of_int w))
        updates;
      let snapshot p =
        ( List.sort compare (Hashpipe.heavy_hitters p ~threshold:0.),
          List.sort compare (Hashpipe.resident_keys p) )
      in
      let before = snapshot pipe in
      Hashpipe.reseed pipe new_salt;
      let after = snapshot pipe in
      before = after)

(* ---------------- strategic chaos hook ---------------- *)

(* Chaos.strategic polls a decision function and applies what it
   returns: faults land when the attacker's belief state says so, not
   on a prescheduled clock. *)
let test_strategic_hook () =
  let lm = T.Fig2.build () in
  let engine = Engine.create () in
  let net = Net.create engine lm.T.Fig2.topo in
  let chaos = Ff_chaos.Chaos.create net in
  let d = List.hd lm.T.Fig2.detour in
  let trigger = ref false in
  Ff_chaos.Chaos.strategic chaos ~period:0.5 ~start:1.0 ~until:6.0 ~decide:(fun () ->
      if !trigger then begin
        trigger := false;
        [ Ff_chaos.Chaos.Switch_down d ]
      end
      else []);
  Engine.after engine ~delay:2.2 (fun () -> trigger := true);
  Engine.run engine ~until:8.;
  Alcotest.(check int) "one action applied" 1 (Ff_chaos.Chaos.injected chaos);
  (match Ff_chaos.Chaos.log chaos with
  | [ (at, Ff_chaos.Chaos.Switch_down sw) ] ->
    Alcotest.(check int) "targeted switch" d sw;
    Alcotest.(check bool) "after the trigger, on the poll grid" true (at >= 2.2 && at <= 3.0)
  | l -> Alcotest.failf "unexpected log (%d entries)" (List.length l));
  Alcotest.(check bool) "switch is down" false (Net.switch_is_up net ~sw:d)

let () =
  Alcotest.run "ff_adversarial"
    [
      ( "determinism",
        [
          Alcotest.test_case "collision-probe replays bit-for-bit" `Quick
            test_replay_collision_probe;
          Alcotest.test_case "hardened epoch-time replays bit-for-bit" `Quick
            test_replay_epoch_time_hardened;
        ] );
      ( "hysteresis",
        [ Alcotest.test_case "threshold oscillation does not flap" `Quick
            test_hysteresis_no_flap ] );
      ("rotation", [ Test_seed.to_alcotest rotation_totals_exact ]);
      ("chaos", [ Alcotest.test_case "strategic hook" `Quick test_strategic_hook ]);
    ]
